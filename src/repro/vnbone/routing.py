"""Routing over the vN-Bone (Section 3.3.2) and the IPvN data plane.

The paper deliberately leaves the IPvN routing protocols unconstrained
("BGPvN need not strictly resemble today's BGP").  We implement the
straightforward choice: link-state over the virtual topology.  Every
member computes shortest paths over the tunnel graph, and routes are
installed for *advertised prefixes* — each prefix advertised by one or
more **owners** with an advertised cost, mirroring route origination:

* each member's own IPvN address (``LOCAL``),
* native host addresses, owned by the member nearest the host's access
  router, which exits the vN-Bone towards the host (``EGRESS``),
* self-addressed blocks of non-IPvN domains, owned by the egress
  routers that :mod:`repro.vnbone.egress` selects (``EGRESS``),
* proxy-advertised external domains (:mod:`repro.vnbone.proxy`).

When several owners advertise the same prefix, each member routes to
the one minimizing (vN-Bone distance + advertised cost) — anycast-style
selection inside the vN-Bone, which is exactly how advertising-by-proxy
picks the best exit (Figure 4).

The module also provides the forwarding-engine handler that makes IPvN
routers act on these FIBs, including the fallback the paper calls "the
simplest option": if a packet has no vN route but carries (or embeds)
an IPv(N-1) destination, exit the vN-Bone and forward directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.address import IPv4Address, Prefix
from repro.net.forwarding import (VnDecision, VnDeliver, VnDrop, VnEgress,
                                  VnForward, VnHandler)
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import Packet, VNHeader
from repro.obs import get_obs
from repro.perf.cache import caching_enabled
from repro.vnbone.state import VnAction, VnFibEntry, VnRouterState

#: A canonical, hashable rendering of a tunnel-graph adjacency —
#: member -> sorted (neighbor, cost) edges.  Equal signatures mean the
#: SPF input is unchanged, so prior results can be reused verbatim.
AdjacencySignature = Tuple[Tuple[str, Tuple[Tuple[str, float], ...]], ...]


def adjacency_signature(
        adjacency: Dict[str, Dict[str, float]]) -> AdjacencySignature:
    return tuple((member, tuple(sorted(adjacency[member].items())))
                 for member in sorted(adjacency))


@dataclass(frozen=True)
class OwnerEntry:
    """One prefix advertisement into vN-Bone routing."""

    prefix: Prefix
    owner: str
    action: VnAction
    egress_ipv4: Optional[IPv4Address] = None
    advertised_cost: float = 0.0
    origin: str = ""


class VnRouting:
    """Computes vN-Bone routes and installs IPvN FIBs."""

    def __init__(self, network: Network, version: int) -> None:
        self.network = network
        self.version = version
        self.obs = get_obs()
        self._dist: Dict[str, Dict[str, float]] = {}
        self._first_hop: Dict[str, Dict[str, str]] = {}
        #: Tunnel-graph signature the current SPF results were built from.
        self._signature: Optional[AdjacencySignature] = None
        self.spf_cache_enabled = caching_enabled()

    # -- SPF over the tunnel graph ------------------------------------------------
    def _spf(self, source: str,
             adjacency: Dict[str, List[Tuple[str, float]]]) -> None:
        if self.obs.enabled:
            self.obs.counter("perf.dijkstra_runs").inc()
        dist: Dict[str, float] = {source: 0.0}
        first: Dict[str, str] = {}
        heap: List[Tuple[float, str, Optional[str]]] = [(0.0, source, None)]
        settled: Set[str] = set()
        while heap:
            d, u, hop = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            dist[u] = d
            if hop is not None:
                first[u] = hop
            for v, cost in adjacency.get(u, ()):
                if v in settled:
                    continue
                next_hop = v if hop is None else hop
                heapq.heappush(heap, (d + cost, v, next_hop))
        self._dist[source] = {n: dist[n] for n in sorted(settled)}
        self._first_hop[source] = first

    def compute(self, states: Dict[str, VnRouterState],
                owner_entries: List[OwnerEntry]) -> None:
        """Run SPF for every member and install all IPvN FIBs.

        The per-member SPF sweep is skipped entirely when the tunnel
        graph is unchanged since the last ``compute`` (same members,
        same edges, same costs) — rebuilds triggered by ownership or
        advertisement changes reuse the previous distances.  FIB
        installation always runs.
        """
        adjacency: Dict[str, Dict[str, float]] = {m: {} for m in states}
        for member, state in states.items():
            for neighbor, cost in state.neighbors.items():
                if neighbor not in states:
                    continue
                adjacency[member][neighbor] = min(
                    cost, adjacency[member].get(neighbor, float("inf")))
                adjacency[neighbor][member] = adjacency[member][neighbor]
        signature = adjacency_signature(adjacency)
        if self.spf_cache_enabled and signature == self._signature:
            if self.obs.enabled:
                self.obs.counter("vnbone.spf_cache_hits").inc()
        else:
            # Edge lists sorted once here, not once per heap pop.
            sorted_adjacency = {member: sorted(edges.items())
                                for member, edges in adjacency.items()}
            self._dist.clear()
            self._first_hop.clear()
            for member in sorted(states):
                self._spf(member, sorted_adjacency)
            self._signature = signature if self.spf_cache_enabled else None
        by_prefix: Dict[Prefix, List[OwnerEntry]] = {}
        for entry in owner_entries:
            by_prefix.setdefault(entry.prefix, []).append(entry)
        for member in sorted(states):
            self._install_member(member, states[member], by_prefix)

    def _install_member(self, member: str, state: VnRouterState,
                        by_prefix: Dict[Prefix, List[OwnerEntry]]) -> None:
        state.fib.clear()
        dist = self._dist.get(member, {})
        first_hop = self._first_hop.get(member, {})
        for prefix in sorted(by_prefix, key=str):
            best: Optional[Tuple[float, str, OwnerEntry]] = None
            for entry in sorted(by_prefix[prefix], key=lambda e: e.owner):
                if entry.owner == member:
                    total = entry.advertised_cost
                elif entry.owner in dist:
                    total = dist[entry.owner] + entry.advertised_cost
                else:
                    continue  # owner unreachable over the vN-Bone
                key = (total, entry.owner, entry)
                if best is None or key[:2] < best[:2]:
                    best = key
            if best is None:
                continue
            total, owner, entry = best
            if owner == member:
                state.fib.install(VnFibEntry(prefix=prefix, action=entry.action,
                                             egress_ipv4=entry.egress_ipv4,
                                             metric=total, origin=entry.origin))
            else:
                state.fib.install(VnFibEntry(prefix=prefix, action=VnAction.FORWARD,
                                             next_hop=first_hop[owner],
                                             metric=total, origin=entry.origin))

    # -- inspection ---------------------------------------------------------------------
    def distance(self, a: str, b: str) -> Optional[float]:
        return self._dist.get(a, {}).get(b)

    def reachable_members(self, member: str) -> Set[str]:
        return set(self._dist.get(member, {}))

    def path(self, a: str, b: str) -> Optional[List[str]]:
        """Member-level vN-Bone path from *a* to *b* (following first hops)."""
        if b not in self._dist.get(a, {}):
            return None
        path = [a]
        current = a
        seen = {a}
        while current != b:
            nxt = self._first_hop.get(current, {}).get(b)
            if nxt is None or nxt in seen:
                return None
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return path


def make_vn_handler(version: int,
                    fallback_exit: bool = True) -> VnHandler:
    """Forwarding-engine handler implementing the IPvN data plane.

    ``fallback_exit`` enables the paper's "simplest option": with no vN
    route, exit the vN-Bone towards the packet's IPv(N-1) destination
    (option field, or inferred from a self-assigned address).
    """

    def handler(node: Node, packet: Packet) -> VnDecision:
        state = node.vn_state_for(version)
        if not isinstance(state, VnRouterState) or state.version != version:
            return VnDrop(f"{node.node_id} has no IPv{version} state")
        header = packet.outer
        assert isinstance(header, VNHeader)
        if header.dst == state.vn_address:
            return VnDeliver()
        entry = state.fib.lookup(header.dst)
        if entry is not None:
            if entry.action is VnAction.LOCAL:
                return VnDeliver()
            if entry.action is VnAction.FORWARD:
                assert entry.next_hop is not None
                return VnForward(entry.next_hop)
            target = entry.egress_ipv4
            if target is None:
                target = header.effective_dest_ipv4()
            if target is None:
                return VnDrop(f"egress entry for {entry.prefix} has no IPv4 target")
            return VnEgress(target)
        if fallback_exit:
            target = header.effective_dest_ipv4()
            if target is not None:
                return VnEgress(target)
        return VnDrop(f"no IPv{version} route for {header.dst} at {node.node_id}")

    return handler
