"""Per-router IPvN state and the IPvN forwarding table.

A router that deploys IPvN gets a :class:`VnRouterState` attached to its
``vn_states`` slots.  The state holds the router's native IPvN address,
its vN-Bone neighbor set (virtual links — IPv4 tunnels), and its IPvN
FIB.

IPvN FIB entries are richer than IPv4 ones because the vN-Bone has
three ways to dispose of a packet (Section 3.4):

* ``FORWARD`` — tunnel it to a vN-Bone neighbor;
* ``EGRESS`` — exit the vN-Bone: encapsulate towards an IPv4 address
  (a destination host, or the packet's own IPv(N-1) option address);
* ``LOCAL`` — this router is the destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.net.address import VN_BITS, IPv4Address, Prefix, VNAddress
from repro.net.errors import RoutingError
from repro.net.trie import PrefixTrie


class VnAction(Enum):
    FORWARD = "forward"
    EGRESS = "egress"
    LOCAL = "local"


@dataclass(frozen=True)
class VnFibEntry:
    """One IPvN forwarding decision."""

    prefix: Prefix
    action: VnAction
    #: vN-Bone neighbor to tunnel to (FORWARD only).
    next_hop: Optional[str] = None
    #: IPv4 address to exit towards (EGRESS); None means "use the
    #: packet's own IPv(N-1) destination" (option field / self-address).
    egress_ipv4: Optional[IPv4Address] = None
    metric: float = 0.0
    #: Which mechanism installed the entry: "intra", "bgpvn", "host",
    #: "proxy", "egress-select".
    origin: str = ""

    def __post_init__(self) -> None:
        if self.action is VnAction.FORWARD and self.next_hop is None:
            raise RoutingError(f"FORWARD entry for {self.prefix} needs a next hop")


class VnFib:
    """Longest-prefix-match table over the 64-bit IPvN family."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[VnFibEntry] = PrefixTrie(VN_BITS)

    def __len__(self) -> int:
        return len(self._trie)

    def install(self, entry: VnFibEntry) -> None:
        self._trie.insert(entry.prefix, entry)

    def lookup(self, address: VNAddress) -> Optional[VnFibEntry]:
        match = self._trie.lookup(address)
        return match[1] if match is not None else None

    def entries(self) -> List[VnFibEntry]:
        return [entry for _, entry in self._trie.items()]

    def route_count(self) -> int:
        return len(self._trie)

    def clear(self) -> None:
        self._trie.clear()


@dataclass
class VnRouterState:
    """Everything a router knows about one IPvN deployment."""

    version: int
    router_id: str
    vn_address: VNAddress
    fib: VnFib = field(default_factory=VnFib)
    #: vN-Bone neighbors: router id -> virtual-link cost (underlying
    #: IPv4 path cost between the tunnel endpoints).
    neighbors: Dict[str, float] = field(default_factory=dict)
    #: Whether this router terminates inter-domain vN tunnels.
    is_vn_border: bool = False
    #: Multicast forwarding state per group address (see
    #: :mod:`repro.vnbone.multicast`); empty unless the deployment has
    #: multicast enabled and this router is tree- or core-relevant.
    mcast_groups: Dict[object, object] = field(default_factory=dict)

    def add_neighbor(self, router_id: str, cost: float) -> None:
        if router_id == self.router_id:
            raise RoutingError(f"{self.router_id} cannot be its own vN neighbor")
        current = self.neighbors.get(router_id)
        if current is None or cost < current:
            self.neighbors[router_id] = cost

    def remove_neighbor(self, router_id: str) -> None:
        self.neighbors.pop(router_id, None)

    def neighbor_ids(self) -> List[str]:
        return sorted(self.neighbors)


def vn_prefix_for_ipv4(prefix: Prefix, version: int = 8) -> Prefix:
    """The IPvN prefix covering all self-assigned addresses whose
    embedded IPv4 address falls inside *prefix*.

    Self-assigned addresses are ``FLAG | ipv4`` with the 31 bits between
    flag and the IPv4 value zero, so an IPv4 /L maps to an IPvN
    /(32+L).
    """
    from repro.net.address import SELF_ADDRESS_FLAG  # local import, no cycle

    value = SELF_ADDRESS_FLAG | prefix.address.value
    return Prefix(VNAddress(value, version=version), 32 + prefix.plen)


def native_domain_prefix(asn: int, version: int = 8) -> Prefix:
    """The native IPvN block of an adopting domain: ``asn << 32`` /32.

    Native (provider-assigned) addresses have the self-addressing flag
    clear; the top half encodes the home ASN, the bottom half numbers
    hosts and routers.
    """
    if not 0 < asn < (1 << 31):
        raise RoutingError(f"ASN {asn} out of range for native IPvN block")
    return Prefix(VNAddress(asn << 32, version=version), 32)
