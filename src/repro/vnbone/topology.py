"""vN-Bone topology construction (Section 3.3.1).

Builds the virtual links (IPv4 tunnels) among IPvN routers:

* **Intra-domain**: in link-state domains, every member knows every
  other member from the LSDB, so each picks its ``k`` closest members
  as neighbors; partitions "can be easily detected and repaired because
  every router has complete knowledge of all other IPvN routers".  In
  distance-vector domains that knowledge is unavailable (paper footnote
  3), so construction falls back to **anycast bootstrap**: each joining
  member connects to the nearest *earlier-joined* member — which is
  what its anycast probe, sent before it starts advertising the address
  itself (footnote 4), would have found.

* **Inter-domain**: adopting domains that are BGP neighbors set up
  tunnels along their peering links; an adopting domain with no
  adopting neighbor bootstraps a long-haul tunnel to the member its
  anycast probe discovers; and every domain ensures it is connected
  (directly or indirectly) to the **anchor** — the default provider of
  the anycast address — the paper's simple inter-domain
  partition-prevention rule.

As deployment spreads, re-running construction makes the vN-Bone
increasingly congruent with the physical topology;
:meth:`VnBoneTopology.congruence` quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.errors import DeploymentError
from repro.net.link import LinkScope
from repro.net.network import Network
from repro.core.orchestrator import Orchestrator
from repro.perf.cache import caching_enabled


@dataclass(frozen=True)
class VnTunnel:
    """One virtual link of the vN-Bone."""

    a: str
    b: str
    cost: float
    #: "intra", "inter", "bootstrap-intra", "bootstrap-inter", "repair".
    kind: str

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class _UnionFind:
    def __init__(self, items: Iterable[str]) -> None:
        self._parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[max(ra, rb)] = min(ra, rb)
        return True

    def components(self) -> Dict[str, Set[str]]:
        groups: Dict[str, Set[str]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), set()).add(item)
        return groups


class VnBoneTopology:
    """Constructs vN-Bone tunnels for one deployment."""

    def __init__(self, orchestrator: Orchestrator, version: int,
                 k_neighbors: int = 2, anchor_asn: Optional[int] = None) -> None:
        if k_neighbors < 1:
            raise DeploymentError("k_neighbors must be at least 1")
        self.orchestrator = orchestrator
        self.network: Network = orchestrator.network
        self.version = version
        self.k_neighbors = k_neighbors
        self.anchor_asn = anchor_asn
        self._global_dist_cache: Dict[str, Dict[str, float]] = {}
        self._intra_dist_cache: Dict[str, Dict[str, float]] = {}
        #: Topology version the dist caches were computed against.
        self._cache_version = self.network.topology_version
        self.dist_cache_enabled = caching_enabled()

    # -- distance helpers -----------------------------------------------------
    def _intra_dists(self, member: str, asn: int) -> Dict[str, float]:
        cached = self._intra_dist_cache.get(member)
        if cached is None:
            tree = self.network.shortest_path_tree(member, intra_domain_only=True,
                                                   domain=asn)
            cached = {node: info[0] for node, info in tree.items()}
            self._intra_dist_cache[member] = cached
        return cached

    def _global_dists(self, member: str) -> Dict[str, float]:
        cached = self._global_dist_cache.get(member)
        if cached is None:
            tree = self.network.shortest_path_tree(member)
            cached = {node: info[0] for node, info in tree.items()}
            self._global_dist_cache[member] = cached
        return cached

    def invalidate_caches(self) -> None:
        """Unconditionally drop the memoized distance maps."""
        self._global_dist_cache.clear()
        self._intra_dist_cache.clear()
        self._cache_version = self.network.topology_version

    def _refresh_caches(self) -> None:
        """Drop the distance maps only if the topology actually changed
        since they were computed (the version-aware variant used by
        :meth:`build`)."""
        if (not self.dist_cache_enabled
                or self._cache_version != self.network.topology_version):
            self.invalidate_caches()

    def member_distance(self, member: str, target_id: str,
                        asn: int) -> Optional[float]:
        """Intra-domain IGP distance from a member to any node of its AS."""
        return self._intra_dists(member, asn).get(target_id)

    # -- construction ------------------------------------------------------------
    def build(self, members_by_domain: Dict[int, Set[str]],
              join_order: Dict[str, int]) -> List[VnTunnel]:
        """Construct all tunnels.  ``join_order`` records deployment order
        (used by the anycast-bootstrap paths)."""
        self._refresh_caches()
        tunnels: List[VnTunnel] = []
        for asn in sorted(members_by_domain):
            tunnels.extend(self._build_intra(asn, members_by_domain[asn], join_order))
        tunnels.extend(self._build_inter(members_by_domain, join_order))
        tunnels.extend(self._ensure_anchor_connectivity(members_by_domain,
                                                        join_order, tunnels))
        return self._dedupe(tunnels)

    @staticmethod
    def _dedupe(tunnels: List[VnTunnel]) -> List[VnTunnel]:
        best: Dict[Tuple[str, str], VnTunnel] = {}
        for tunnel in tunnels:
            key = tunnel.endpoints()
            if key not in best or tunnel.cost < best[key].cost:
                best[key] = tunnel
        return [best[key] for key in sorted(best)]

    # -- intra-domain ----------------------------------------------------------------
    def _build_intra(self, asn: int, members: Set[str],
                     join_order: Dict[str, int]) -> List[VnTunnel]:
        ordered = sorted(members)
        if len(ordered) < 2:
            return []
        igp = self.orchestrator.igp(asn)
        if igp.supports_member_discovery:
            return self._intra_k_closest(asn, ordered)
        return self._intra_bootstrap(asn, ordered, join_order)

    def _intra_k_closest(self, asn: int, members: List[str]) -> List[VnTunnel]:
        """Every member picks its k closest members (LSDB knowledge)."""
        tunnels: List[VnTunnel] = []
        for member in members:
            dists = self._intra_dists(member, asn)
            candidates = sorted(
                ((dists[other], other) for other in members
                 if other != member and other in dists))
            for cost, other in candidates[:self.k_neighbors]:
                tunnels.append(VnTunnel(a=member, b=other, cost=cost, kind="intra"))
        tunnels.extend(self._repair_partitions(members, tunnels,
                                               lambda m: self._intra_dists(m, asn),
                                               kind="repair"))
        return tunnels

    def _intra_bootstrap(self, asn: int, members: List[str],
                         join_order: Dict[str, int]) -> List[VnTunnel]:
        """Distance-vector domains: join via anycast, one member at a time.

        Each joiner connects to the nearest member that joined before it
        (what its pre-advertisement anycast probe resolves to), plus up
        to ``k - 1`` additional earlier members learned through vN-Bone
        routing gossip afterwards.
        """
        tunnels: List[VnTunnel] = []
        by_join = sorted(members, key=lambda m: (join_order.get(m, 0), m))
        for index, member in enumerate(by_join):
            earlier = by_join[:index]
            if not earlier:
                continue
            dists = self._intra_dists(member, asn)
            candidates = sorted((dists[e], e) for e in earlier if e in dists)
            for cost, other in candidates[:self.k_neighbors]:
                tunnels.append(VnTunnel(a=member, b=other, cost=cost,
                                        kind="bootstrap-intra"))
        return tunnels

    def _repair_partitions(self, members: List[str], tunnels: List[VnTunnel],
                           dists_of, kind: str) -> List[VnTunnel]:
        """Connect disconnected member components via closest pairs."""
        repairs: List[VnTunnel] = []
        uf = _UnionFind(members)
        for tunnel in tunnels:
            uf.union(tunnel.a, tunnel.b)
        while True:
            components = list(uf.components().values())
            if len(components) <= 1:
                return repairs
            best: Optional[Tuple[float, str, str]] = None
            main = min(components, key=lambda c: min(c))
            for component in components:
                if component is main:
                    continue
                for member in sorted(component):
                    dists = dists_of(member)
                    for target in sorted(main):
                        cost = dists.get(target)
                        if cost is None:
                            continue
                        key = (cost, member, target)
                        if best is None or key < best:
                            best = key
            if best is None:
                return repairs  # physically partitioned; nothing to do
            cost, member, target = best
            repairs.append(VnTunnel(a=member, b=target, cost=cost, kind=kind))
            uf.union(member, target)

    # -- inter-domain ------------------------------------------------------------------
    def _build_inter(self, members_by_domain: Dict[int, Set[str]],
                     join_order: Dict[str, int]) -> List[VnTunnel]:
        tunnels: List[VnTunnel] = []
        adopting = set(members_by_domain)
        connected_domains: Set[int] = set()
        # Tunnels along peering links between adopting domains.
        for key in sorted(self.network.links):
            link = self.network.links[key]
            if link.scope is not LinkScope.INTER_DOMAIN or not link.up:
                continue
            asn_a = self.network.node(link.a).domain_id
            asn_b = self.network.node(link.b).domain_id
            if asn_a not in adopting or asn_b not in adopting:
                continue
            member_a, cost_a = self._nearest_member(link.a, members_by_domain[asn_a])
            member_b, cost_b = self._nearest_member(link.b, members_by_domain[asn_b])
            if member_a is None or member_b is None:
                continue
            tunnels.append(VnTunnel(a=member_a, b=member_b,
                                    cost=cost_a + link.cost + cost_b, kind="inter"))
            connected_domains.update((asn_a, asn_b))
        # Anycast bootstrap for adopting domains with no adopting neighbor.
        domain_join = {asn: min(join_order.get(m, 0) for m in members)
                       for asn, members in members_by_domain.items() if members}
        for asn in sorted(adopting - connected_domains):
            earlier_members = [m for other, members in members_by_domain.items()
                               if other != asn
                               and domain_join.get(other, 0) < domain_join.get(asn, 0)
                               for m in members]
            if not earlier_members:
                continue
            joiner = min(members_by_domain[asn])
            dists = self._global_dists(joiner)
            candidates = sorted((dists[m], m) for m in earlier_members if m in dists)
            if candidates:
                cost, target = candidates[0]
                tunnels.append(VnTunnel(a=joiner, b=target, cost=cost,
                                        kind="bootstrap-inter"))
        return tunnels

    def _nearest_member(self, border_id: str, members: Set[str]
                        ) -> Tuple[Optional[str], float]:
        if border_id in members:
            return border_id, 0.0
        asn = self.network.node(border_id).domain_id
        best: Optional[Tuple[float, str]] = None
        for member in sorted(members):
            cost = self._intra_dists(member, asn).get(border_id)
            if cost is None:
                continue
            if best is None or (cost, member) < best:
                best = (cost, member)
        if best is None:
            return None, 0.0
        return best[1], best[0]

    # -- anchor (default provider) connectivity ---------------------------------------------
    def _ensure_anchor_connectivity(self, members_by_domain: Dict[int, Set[str]],
                                    join_order: Dict[str, int],
                                    tunnels: List[VnTunnel]) -> List[VnTunnel]:
        all_members = sorted({m for members in members_by_domain.values()
                              for m in members})
        if len(all_members) < 2:
            return []
        anchor_asn = self.anchor_asn
        if anchor_asn is None or anchor_asn not in members_by_domain:
            domain_join = {asn: min(join_order.get(m, 0) for m in members)
                           for asn, members in members_by_domain.items() if members}
            anchor_asn = min(domain_join, key=lambda a: (domain_join[a], a))
        anchor_member = min(members_by_domain[anchor_asn])
        uf = _UnionFind(all_members)
        for tunnel in tunnels:
            uf.union(tunnel.a, tunnel.b)
        repairs: List[VnTunnel] = []
        while True:
            components = uf.components()
            anchor_root = uf.find(anchor_member)
            others = [c for root, c in components.items() if root != anchor_root]
            if not others:
                return repairs
            anchor_component = components[anchor_root]
            best: Optional[Tuple[float, str, str]] = None
            for component in others:
                for member in sorted(component):
                    dists = self._global_dists(member)
                    for target in sorted(anchor_component):
                        cost = dists.get(target)
                        if cost is None:
                            continue
                        key = (cost, member, target)
                        if best is None or key < best:
                            best = key
            if best is None:
                return repairs
            cost, member, target = best
            repairs.append(VnTunnel(a=member, b=target, cost=cost, kind="repair"))
            uf.union(member, target)

    # -- congruence metric (Section 3.3.1, last paragraph) --------------------------------
    def congruence(self, tunnels: List[VnTunnel]) -> Dict[str, float]:
        """How well the vN-Bone matches the physical topology.

        * ``inter_congruent_fraction``: fraction of inter-domain tunnels
          whose endpoint domains are physical BGP neighbors;
        * ``mean_tunnel_cost``: average underlying path cost per tunnel.
        """
        inter = [t for t in tunnels if t.kind in ("inter", "bootstrap-inter", "repair")
                 and self.network.node(t.a).domain_id != self.network.node(t.b).domain_id]
        congruent = 0
        for tunnel in inter:
            asn_a = self.network.node(tunnel.a).domain_id
            asn_b = self.network.node(tunnel.b).domain_id
            if asn_b in self.network.domains[asn_a].relationships:
                congruent += 1
        mean_cost = (sum(t.cost for t in tunnels) / len(tunnels)) if tunnels else 0.0
        return {
            "tunnels": float(len(tunnels)),
            "inter_tunnels": float(len(inter)),
            "inter_congruent_fraction": (congruent / len(inter)) if inter else 1.0,
            "mean_tunnel_cost": mean_cost,
        }
