"""Baseline tests: absorb known findings, surface new and stale ones."""

import json
import textwrap

import pytest

from repro.analysis import (AnalysisError, Baseline, finding_key,
                            lint_project_sources)

BAD_EMITTER = {
    "src/repro/report/emit.py": textwrap.dedent("""
        SCHEMA = "repro.test/v1"

        def emit(payload):
            return {"schema": SCHEMA}
    """),
    "src/repro/report/check.py": textwrap.dedent("""
        SCHEMA = "repro.test/v1"

        def validate(doc):
            errors = []
            if doc.get("schema") != SCHEMA:
                errors.append("schema")
            if "alpha" not in doc:
                errors.append("alpha")
            return errors
    """),
}


def lint(files, baseline=None):
    return lint_project_sources(files, rule_ids=["S1", "S2"],
                                baseline=baseline)


class TestBaselineRoundTrip:
    def test_known_findings_absorbed(self):
        first = lint(BAD_EMITTER)
        assert not first.ok
        baseline = Baseline.from_findings(first.findings)
        second = lint(BAD_EMITTER, baseline=baseline)
        assert second.ok
        assert len(second.baselined) == 1
        assert second.actionable == []
        assert second.stale_baseline == []

    def test_new_finding_stays_actionable(self):
        baseline = Baseline.from_findings(lint(BAD_EMITTER).findings)
        files = dict(BAD_EMITTER)
        files["src/repro/report/emit.py"] = textwrap.dedent("""
            SCHEMA = "repro.test/v1"

            def emit(payload):
                return {"schema": SCHEMA, "extra": 1}
        """)
        report = lint(files, baseline=baseline)
        assert not report.ok
        assert [f.rule_id for f in report.actionable] == ["S2"]

    def test_fixed_finding_reported_stale(self):
        baseline = Baseline.from_findings(lint(BAD_EMITTER).findings)
        files = dict(BAD_EMITTER)
        files["src/repro/report/emit.py"] = textwrap.dedent("""
            SCHEMA = "repro.test/v1"

            def emit(payload):
                return {"schema": SCHEMA, "alpha": payload}
        """)
        report = lint(files, baseline=baseline)
        assert report.ok
        assert len(report.stale_baseline) == 1
        assert "S1" in report.stale_baseline[0]

    def test_key_is_line_drift_proof(self):
        baseline = Baseline.from_findings(lint(BAD_EMITTER).findings)
        files = dict(BAD_EMITTER)
        files["src/repro/report/emit.py"] = (
            "# a new leading comment\n# another\n"
            + BAD_EMITTER["src/repro/report/emit.py"])
        report = lint(files, baseline=baseline)
        assert report.ok
        assert len(report.baselined) == 1

    def test_count_budget_marks_only_that_many(self):
        files = dict(BAD_EMITTER)
        files["src/repro/report/emit.py"] = textwrap.dedent("""
            SCHEMA = "repro.test/v1"

            def emit(payload):
                return {"schema": SCHEMA}

            def emit_copy(payload):
                return {"schema": SCHEMA}
        """)
        two = lint(files)
        assert len(two.findings) == 2
        key = finding_key(two.findings[0])
        assert finding_key(two.findings[1]) == key
        report = lint(files, baseline=Baseline(entries={key: 1}))
        assert len(report.baselined) == 1
        assert len(report.actionable) == 1

    def test_suppressed_findings_not_written(self):
        files = dict(BAD_EMITTER)
        files["src/repro/report/emit.py"] = textwrap.dedent("""
            SCHEMA = "repro.test/v1"

            def emit(payload):  # repro: allow[S1]
                return {"schema": SCHEMA}
        """)
        report = lint(files)
        assert report.ok
        baseline = Baseline.from_findings(report.findings)
        assert baseline.entries == {}


class TestBaselineFile:
    def test_save_and_load(self, tmp_path):
        baseline = Baseline.from_findings(lint(BAD_EMITTER).findings)
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        loaded = Baseline.from_file(str(path))
        assert loaded.entries == baseline.entries
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.analysis-baseline/v1"

    def test_missing_file_raises(self):
        with pytest.raises(AnalysisError, match="baseline file"):
            Baseline.from_file("/nonexistent/baseline.json")

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema": "bogus/v9", "entries": {}}')
        with pytest.raises(AnalysisError, match="schema"):
            Baseline.from_file(str(path))

    def test_malformed_entries_raise(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"schema": "repro.analysis-baseline/v1",
             "entries": {"a::b::c": "not-a-count"}}))
        with pytest.raises(AnalysisError, match="bad entry"):
            Baseline.from_file(str(path))
