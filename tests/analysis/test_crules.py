"""C-rule tests: topology/FIB mutations must reach a version bump."""

import textwrap

from repro.analysis import lint_project_sources


def project(files, rules=("C1", "C2")):
    texts = {path: textwrap.dedent(text) for path, text in files.items()}
    return lint_project_sources(texts, rule_ids=list(rules))


def rule_ids(report):
    return [f.rule_id for f in report.actionable]


class TestTopologyMutationRule:
    def test_unbumped_links_delete_flagged(self):
        report = project({"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}

                def drop_link(self, key):
                    del self.links[key]
        """})
        assert rule_ids(report) == ["C1"]
        assert "drop_link" in report.actionable[0].message

    def test_direct_bump_in_same_function_is_covered(self):
        report = project({"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}
                    self.topology_version = 0

                def _bump_topology_version(self):
                    self.topology_version += 1

                def add_link(self, key, link):
                    self.links[key] = link
                    self._bump_topology_version()
        """})
        assert report.ok

    def test_bump_in_caller_covers_helper(self):
        report = project({"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}
                    self.topology_version = 0

                def _bump_topology_version(self):
                    self.topology_version += 1

                def _wire(self, key, link):
                    self.links[key] = link

                def add_link(self, key, link):
                    self._wire(key, link)
                    self._bump_topology_version()
        """})
        assert report.ok

    def test_liveness_write_without_bump_flagged(self):
        report = project({"src/repro/faults/inject.py": """
            def fail_link(link):
                link.up = False
        """})
        assert rule_ids(report) == ["C1"]
        assert ".up" in report.actionable[0].message

    def test_fastpath_bump_in_caller_covers_liveness_write(self):
        report = project({"src/repro/faults/inject.py": """
            def fail_link(link):
                link.up = False

            def inject(net, link, fastpath):
                fail_link(link)
                fastpath.bump()
        """})
        assert report.ok

    def test_constructors_exempt(self):
        report = project({"src/repro/net/core.py": """
            class Link:
                def __init__(self, cost):
                    self.up = True
                    self.cost = cost
        """})
        assert report.ok

    def test_non_topology_package_exempt(self):
        report = project({"src/repro/obs/shadow.py": """
            def fail_link(link):
                link.up = False
        """})
        assert report.ok


class TestFibCoherenceRule:
    def test_unbumped_install_flagged(self):
        report = project({"src/repro/routing/apply.py": """
            def apply_route(fib, prefix, route):
                fib.install(prefix, route)
        """})
        assert rule_ids(report) == ["C2"]
        assert "install" in report.actionable[0].message

    def test_unbumped_withdraw_flagged(self):
        report = project({"src/repro/routing/apply.py": """
            def retract(fib, prefix):
                fib.withdraw(prefix)
        """})
        assert rule_ids(report) == ["C2"]

    def test_bump_in_caller_covers_fib_update(self):
        report = project({"src/repro/routing/apply.py": """
            def apply_route(fib, prefix, route):
                fib.install(prefix, route)

            def converge(net, fib, prefix, route):
                apply_route(fib, prefix, route)
                net._bump_topology_version()
        """})
        assert report.ok

    def test_non_fib_receiver_ignored(self):
        report = project({"src/repro/routing/apply.py": """
            def setup(plugin):
                plugin.install("hooks")
        """})
        assert report.ok
