"""Engine, suppression, and reporter tests for repro.analysis."""

import json
import textwrap

import pytest

from repro.analysis import (AnalysisError, Finding, Linter, Severity,
                            collect_files, lint_paths, lint_source,
                            parse_allow_comments, render_human, render_json,
                            render_sarif)


def lint(code, path="src/repro/_inline.py", rules=None):
    return lint_source(textwrap.dedent(code), path=path, rule_ids=rules)


D1_VIOLATION = """
import random

def pick(items):
    return random.choice(items)
"""


class TestSuppressions:
    def test_same_line_allow(self):
        findings = lint("""
            import random

            def pick(items):
                return random.choice(items)  # repro: allow[D1]
        """)
        assert all(f.suppressed for f in findings if f.rule_id == "D1")

    def test_line_above_allow(self):
        findings = lint("""
            import random

            def pick(items):
                # repro: allow[D1]
                return random.choice(items)
        """)
        assert all(f.suppressed for f in findings if f.rule_id == "D1")

    def test_def_line_allow_covers_whole_scope(self):
        findings = lint("""
            import random

            def pick(items):  # repro: allow[D1]
                a = random.choice(items)
                b = random.random()
                return a, b
        """)
        d1 = [f for f in findings if f.rule_id == "D1"]
        assert len(d1) == 2
        assert all(f.suppressed for f in d1)

    def test_allow_star_suppresses_every_rule(self):
        findings = lint("""
            import time

            def f(items=[]):  # repro: allow[*]
                start = time.time()
                return items, start
        """)
        assert findings
        assert all(f.suppressed for f in findings)

    def test_allow_list_is_rule_specific(self):
        findings = lint("""
            import random

            def pick(items=[]):  # repro: allow[D1]
                return random.choice(items)
        """)
        by_rule = {f.rule_id: f.suppressed for f in findings}
        assert by_rule["D1"] is True
        assert by_rule["D5"] is False

    def test_multi_rule_allow(self):
        allows = parse_allow_comments("x = 1  # repro: allow[D1, D3]\n")
        assert allows == {1: {"D1", "D3"}}

    def test_unrelated_comment_not_an_allow(self):
        assert parse_allow_comments("x = 1  # allow[D1] but not ours\n") == {}


class TestLinterConfig:
    def test_rule_filter_restricts_findings(self):
        findings = lint("""
            import random

            def pick(items=[]):
                return random.choice(items)
        """, rules=["D5"])
        assert {f.rule_id for f in findings} == {"D5"}

    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            lint_source("x = 1\n", rule_ids=["D9"])

    def test_severity_override(self):
        linter = Linter(severity_overrides={"D1": Severity.WARNING})
        findings = linter.lint_text(D1_VIOLATION, "src/repro/_inline.py")
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_findings_sorted(self):
        findings = lint("""
            import random

            def g(items=[]):
                return random.random()
        """)
        assert findings == sorted(findings, key=Finding.sort_key)


class TestLintPaths:
    def test_report_over_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "routing"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def f():\n    for x in {1, 2}:\n        print(x)\n")
        (pkg / "good.py").write_text("x = 1\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert not report.ok
        assert report.counts_by_rule() == {"D3": 1}

    def test_parse_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = lint_paths([str(tmp_path)])
        assert not report.ok
        assert len(report.parse_errors) == 1
        assert "syntax error" in report.parse_errors[0][1]

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such file"):
            lint_paths(["/nonexistent/elsewhere"])

    def test_collect_files_sorted_and_deduped(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        (tmp_path / "c.txt").write_text("")
        files = collect_files([str(tmp_path), str(tmp_path / "a.py")])
        assert [p.name for p in files] == ["a.py", "b.py"]


class TestReporters:
    def _report(self, tmp_path):
        target = tmp_path / "src" / "repro"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(
            "import random\nx = random.random()\n"
            "y = random.random()  # repro: allow[D1]\n")
        return lint_paths([str(tmp_path)])

    def test_json_schema(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["schema"] == "repro.analysis/v2"
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["counts"]["total"] == 2
        assert payload["counts"]["actionable"] == 1
        assert payload["counts"]["unsuppressed"] == 1
        assert payload["counts"]["suppressed"] == 1
        assert payload["counts"]["baselined"] == 0
        assert payload["counts"]["by_rule"] == {"D1": 1}
        assert payload["parse_errors"] == []
        assert payload["stale_baseline"] == []
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule", "severity",
                                "message", "suppressed", "baselined"}
        assert finding["rule"] == "D1"
        assert finding["severity"] == "error"

    def test_human_reporter_lists_findings_and_summary(self, tmp_path):
        text = render_human(self._report(tmp_path))
        assert "D1" in text
        assert "1 finding" in text
        assert "suppressed" in text

    def test_human_reporter_clean_run(self):
        report = lint_paths(["src/repro/analysis"])
        text = render_human(report)
        assert "clean" in text

    def test_sarif_shape_and_suppressions(self, tmp_path):
        doc = json.loads(render_sarif(self._report(tmp_path)))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"D1", "C1", "P1", "S1"} <= rule_ids
        results = run["results"]
        assert len(results) == 2
        plain = [r for r in results if "suppressions" not in r]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(plain) == 1 and len(suppressed) == 1
        assert suppressed[0]["suppressions"] == [{"kind": "inSource"}]
        location = plain[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("mod.py")
        assert location["region"]["startLine"] >= 1


class TestParallelParsing:
    def _tree(self, tmp_path):
        target = tmp_path / "src" / "repro" / "routing"
        target.mkdir(parents=True)
        for index in range(8):
            body = "import random\nx = random.random()\n" if index % 2 \
                else "x = 1\n"
            (target / f"mod{index}.py").write_text(body)
        (target / "broken.py").write_text("def f(:\n")
        return str(tmp_path)

    def test_jobs_identical_to_serial(self, tmp_path):
        root = self._tree(tmp_path)
        serial = lint_paths([root])
        parallel = lint_paths([root], jobs=4)
        assert [f.to_dict() for f in parallel.findings] == \
            [f.to_dict() for f in serial.findings]
        assert parallel.parse_errors == serial.parse_errors
        assert parallel.files_checked == serial.files_checked
