"""The meta-test: the repository's own source tree must lint clean.

This is the same gate CI runs (``python -m repro lint src --json`` and
``python -m repro lint --project src --baseline .lint-baseline.json``);
keeping it in the tier-1 suite means a determinism-convention or
whole-program-invariant regression fails the ordinary test run, not
just the lint jobs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import Baseline, lint_paths, lint_project

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / ".lint-baseline.json"


class TestSourceTreeIsClean:
    def test_lint_src_programmatic(self):
        report = lint_paths([str(SRC)])
        assert report.parse_errors == []
        assert report.ok, "\n".join(f.format() for f in report.unsuppressed)

    def test_lint_src_cli_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC), "--json"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro.analysis/v2"
        assert payload["ok"] is True
        assert payload["counts"]["unsuppressed"] == 0

    def test_cli_reports_findings_with_exit_one(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "net" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    for x in {1, 2}:\n        print(x)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(tmp_path), "--json"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["counts"]["by_rule"] == {"D3": 1}

    def test_cli_bad_rule_exits_two(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC),
             "--rule", "D9"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr


class TestProjectGate:
    """The whole-program (C/P/S) analysis over src must also be clean."""

    def test_lint_project_programmatic(self):
        baseline = Baseline.from_file(str(BASELINE))
        report = lint_project([str(SRC)], baseline=baseline)
        assert report.parse_errors == []
        assert report.ok, "\n".join(f.format() for f in report.actionable)

    def test_baseline_has_no_stale_entries(self):
        baseline = Baseline.from_file(str(BASELINE))
        report = lint_project([str(SRC)], baseline=baseline)
        assert report.stale_baseline == []

    def test_lint_project_cli_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--project", str(SRC),
             "--baseline", str(BASELINE), "--json"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True

    def test_project_rule_without_project_flag_exits_two(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC),
             "--rule", "C1"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 2
        assert "--project" in proc.stderr
