"""The meta-test: the repository's own source tree must lint clean.

This is the same gate CI runs (``python -m repro lint src --json``);
keeping it in the tier-1 suite means a determinism-convention
regression fails the ordinary test run, not just the lint job.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestSourceTreeIsClean:
    def test_lint_src_programmatic(self):
        report = lint_paths([str(SRC)])
        assert report.parse_errors == []
        assert report.ok, "\n".join(f.format() for f in report.unsuppressed)

    def test_lint_src_cli_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC), "--json"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro.analysis/v1"
        assert payload["ok"] is True
        assert payload["counts"]["unsuppressed"] == 0

    def test_cli_reports_findings_with_exit_one(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "net" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    for x in {1, 2}:\n        print(x)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(tmp_path), "--json"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["counts"]["by_rule"] == {"D3": 1}

    def test_cli_bad_rule_exits_two(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(SRC),
             "--rule", "D9"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr
