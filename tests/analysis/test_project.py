"""Pass-1 tests: the ProjectIndex (imports, call graph, roots, pairs)."""

import textwrap

from repro.analysis import ProjectIndex, SourceFile, module_name_for_path


def index_of(files):
    sources = {path: SourceFile.parse(path, textwrap.dedent(text))
               for path, text in files.items()}
    return ProjectIndex.build(sources)


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for_path("src/repro/net/core.py") == \
            "repro.net.core"

    def test_package_init(self):
        assert module_name_for_path("src/repro/net/__init__.py") == \
            "repro.net"

    def test_path_without_src_prefix(self):
        assert module_name_for_path("repro/obs/tracer.py") == \
            "repro.obs.tracer"


class TestCallGraph:
    def test_same_module_bare_call(self):
        index = index_of({"src/repro/net/a.py": """
            def helper():
                return 1

            def caller():
                return helper()
        """})
        assert "repro.net.a:helper" in \
            index.calls_out["repro.net.a:caller"]

    def test_self_method_call(self):
        index = index_of({"src/repro/net/a.py": """
            class Box:
                def inner(self):
                    return 1

                def outer(self):
                    return self.inner()
        """})
        assert "repro.net.a:Box.inner" in \
            index.calls_out["repro.net.a:Box.outer"]

    def test_imported_function_call(self):
        index = index_of({
            "src/repro/net/a.py": """
                def shared():
                    return 1
            """,
            "src/repro/net/b.py": """
                from repro.net.a import shared

                def caller():
                    return shared()
            """,
        })
        assert "repro.net.a:shared" in \
            index.calls_out["repro.net.b:caller"]

    def test_caller_closure_is_transitive(self):
        index = index_of({"src/repro/net/a.py": """
            def leaf():
                return 1

            def mid():
                return leaf()

            def top():
                return mid()
        """})
        closure = index.caller_closure({"repro.net.a:leaf"})
        assert {"repro.net.a:leaf", "repro.net.a:mid",
                "repro.net.a:top"} <= closure

    def test_attr_call_does_not_link_module_level_functions(self):
        """``obj.run()`` must not alias every plain function named run.

        Module-level functions are only reachable through imports, which
        resolve exactly; the name fallback covers methods and nested
        functions only.
        """
        index = index_of({
            "src/repro/experiments/base.py": """
                def run(spec):
                    return spec
            """,
            "src/repro/fleet/scheduler.py": """
                def kick(scheduler):
                    return scheduler.run()
            """,
        })
        assert "repro.experiments.base:run" not in \
            index.calls_out["repro.fleet.scheduler:kick"]

    def test_attr_call_still_links_methods(self):
        index = index_of({
            "src/repro/net/a.py": """
                class Worker:
                    def run(self):
                        return 1
            """,
            "src/repro/net/b.py": """
                def kick(worker):
                    return worker.run()
            """,
        })
        assert "repro.net.a:Worker.run" in \
            index.calls_out["repro.net.b:kick"]


class TestWorkloadRoots:
    def test_decorator_registration(self):
        index = index_of({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                return {}
        """})
        assert index.workload_roots == {"repro.experiments.demo:runner"}

    def test_call_form_registration(self):
        index = index_of({"src/repro/experiments/demo.py": """
            from repro.experiments import base

            def runner(seed, params):
                return {}

            base.register("demo")(runner)
        """})
        assert index.workload_roots == {"repro.experiments.demo:runner"}

    def test_factory_registration_marks_returned_nested(self):
        index = index_of({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            def make(n):
                def runner(seed, params):
                    return {"n": n}
                return runner

            register("demo")(make(3))
        """})
        assert index.workload_roots == \
            {"repro.experiments.demo:make.<locals>.runner"}

    def test_register_from_other_module_ignored(self):
        index = index_of({"src/repro/experiments/demo.py": """
            from repro.plugins import register

            @register("demo")
            def runner(seed, params):
                return {}
        """})
        assert index.workload_roots == set()


class TestEmittersAndValidators:
    FILES = {
        "src/repro/report/emit.py": """
            SCHEMA = "repro.test/v1"

            def emit(payload):
                return {"schema": SCHEMA, "alpha": payload}
        """,
        "src/repro/report/check.py": """
            SCHEMA = "repro.test/v1"

            def validate(doc):
                errors = []
                if doc.get("schema") != SCHEMA:
                    errors.append("schema")
                if "alpha" not in doc:
                    errors.append("alpha")
                if doc.get("gamma") is not None:
                    errors.append("gamma")
                return errors
        """,
    }

    def test_emitter_keys_and_schema(self):
        index = index_of(self.FILES)
        emitters = index.emitters["repro.test/v1"]
        assert len(emitters) == 1
        assert emitters[0].keys == {"schema", "alpha"}
        assert not emitters[0].dynamic

    def test_validator_required_and_optional(self):
        index = index_of(self.FILES)
        validators = index.validators["repro.test/v1"]
        assert len(validators) == 1
        assert validators[0].required == {"schema", "alpha"}
        assert "gamma" in validators[0].all_known()
        assert "gamma" not in validators[0].required

    def test_embedded_subdocument_check_does_not_hijack_schema(self):
        """A validator checking a nested doc's schema validates its
        own parameter's schema, not the nested one (fleet/matrix)."""
        index = index_of({"src/repro/report/check.py": """
            SCHEMA = "repro.outer/v1"
            INNER_SCHEMA = "repro.inner/v1"

            def validate(doc):
                if doc.get("schema") != SCHEMA:
                    return ["schema"]
                inner = doc.get("inner")
                if inner.get("schema") != INNER_SCHEMA:
                    return ["inner schema"]
                if "alpha" not in doc:
                    return ["alpha"]
                return []
        """})
        outer = index.validators["repro.outer/v1"]
        assert len(outer) == 1
        assert {"schema", "inner", "alpha"} <= outer[0].required
        assert "repro.inner/v1" not in index.validators


class TestResolveConst:
    def test_follows_imports(self):
        index = index_of({
            "src/repro/report/tags.py": """
                SCHEMA = "repro.test/v1"
            """,
            "src/repro/report/emit.py": """
                from repro.report.tags import SCHEMA

                def emit(x):
                    return {"schema": SCHEMA, "x": x}
            """,
        })
        assert "repro.test/v1" in index.emitters
