"""P-rule tests: fleet safety on registered workload-runner paths."""

import textwrap

from repro.analysis import lint_project_sources

REGISTER = "from repro.experiments.base import register\n"


def project(files, rules=("P1", "P2", "P3")):
    texts = {path: textwrap.dedent(text) for path, text in files.items()}
    return lint_project_sources(texts, rule_ids=list(rules))


def rule_ids(report):
    return [f.rule_id for f in report.actionable]


class TestModuleStateRule:
    def test_runner_writing_module_mutable_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            _CACHE = {}

            @register("demo")
            def runner(seed, params):
                _CACHE[seed] = params
                return {"result": 1}
        """})
        assert rule_ids(report) == ["P1"]
        assert "_CACHE" in report.actionable[0].message

    def test_global_rebind_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            _LAST = None

            @register("demo")
            def runner(seed, params):
                global _LAST
                _LAST = seed
                return {"result": 1}
        """})
        assert rule_ids(report) == ["P1"]

    def test_read_of_elsewhere_mutated_global_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            _CACHE = {}

            def remember(seed):
                _CACHE[seed] = True

            @register("demo")
            def runner(seed, params):
                return {"seen": seed in _CACHE}
        """})
        assert "P1" in rule_ids(report)
        reads = [f for f in report.actionable if "reads" in f.message]
        assert reads, [f.message for f in report.actionable]

    def test_mutation_off_runner_path_not_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            _CACHE = {}

            def offline_tool(seed):
                _CACHE[seed] = True
        """})
        assert report.ok

    def test_mutation_in_helper_reached_from_runner_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            _CACHE = {}

            def remember(seed):
                _CACHE[seed] = True

            @register("demo")
            def runner(seed, params):
                remember(seed)
                return {"result": 1}
        """})
        assert rule_ids(report) == ["P1"]
        assert "remember" in report.actionable[0].message

    def test_pure_runner_clean(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                local = {}
                local[seed] = params
                return {"result": len(local)}
        """})
        assert report.ok


class TestClosureCaptureRule:
    def test_closure_over_open_file_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                handle = open("log.txt")

                def reader():
                    return handle.read()

                return {"data": reader()}
        """})
        assert rule_ids(report) == ["P2"]
        assert "handle" in report.actionable[0].message

    def test_lambda_over_with_bound_resource_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                with open("log.txt") as handle:
                    probe = lambda: handle.read()
                    return {"data": probe()}
        """})
        assert rule_ids(report) == ["P2"]

    def test_closure_over_plain_data_clean(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                factor = params["factor"]

                def scale(x):
                    return x * factor

                return {"result": scale(seed)}
        """})
        assert report.ok


class TestWallClockArtifactRule:
    def test_unmarked_wall_value_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            import time
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                return {"elapsed": time.time()}
        """})
        assert rule_ids(report) == ["P3"]
        assert "elapsed" in report.actionable[0].message

    def test_wall_marked_key_clean(self):
        report = project({"src/repro/experiments/demo.py": """
            import time
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                return {"wall_elapsed": time.time()}
        """})
        assert report.ok

    def test_subscript_store_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            import time
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                artifact = {}
                artifact["finished"] = time.time()
                return artifact
        """})
        assert rule_ids(report) == ["P3"]

    def test_wall_named_variable_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            import time
            from repro.experiments.base import register

            @register("demo")
            def runner(seed, params):
                wall_start = time.time()
                return {"started": wall_start}
        """})
        assert rule_ids(report) == ["P3"]

    def test_wall_value_off_runner_path_not_flagged(self):
        report = project({"src/repro/experiments/demo.py": """
            import time

            def offline_probe():
                return {"elapsed": time.time()}
        """})
        assert report.ok
