"""Per-rule positive and negative fixtures for the D1–D5 linter rules.

Every test lints a small in-memory module through
:func:`repro.analysis.lint_source`, pinning each rule's detection and
its non-detection (code following the convention must stay clean).
"""

import textwrap

from repro.analysis import lint_source


def lint(code, path="src/repro/_inline.py", rules=None):
    return lint_source(textwrap.dedent(code), path=path, rule_ids=rules)


def unsuppressed(code, path="src/repro/_inline.py", rules=None):
    return [f for f in lint(code, path=path, rules=rules) if not f.suppressed]


class TestD1SeededRandom:
    def test_global_rng_call_flagged(self):
        findings = unsuppressed("""
            import random

            def pick(items):
                return random.choice(items)
        """, rules=["D1"])
        assert len(findings) == 1
        assert findings[0].rule_id == "D1"
        assert "module-global RNG" in findings[0].message

    def test_unseeded_random_flagged(self):
        findings = unsuppressed("""
            import random

            rng = random.Random()
        """, rules=["D1"])
        assert len(findings) == 1
        assert "unseeded" in findings[0].message

    def test_seeded_random_clean(self):
        assert not unsuppressed("""
            import random

            def make_rng(seed):
                rng = random.Random(seed)
                return rng.randint(0, 10)
        """, rules=["D1"])

    def test_from_import_of_global_fn_flagged(self):
        findings = unsuppressed("from random import shuffle\n", rules=["D1"])
        assert len(findings) == 1
        assert "from random import shuffle" in findings[0].message

    def test_system_random_flagged(self):
        findings = unsuppressed("""
            import random

            rng = random.SystemRandom()
        """, rules=["D1"])
        assert len(findings) == 1
        assert "SystemRandom" in findings[0].message

    def test_import_alias_tracked(self):
        findings = unsuppressed("""
            import random as rnd

            x = rnd.randint(0, 5)
        """, rules=["D1"])
        assert len(findings) == 1

    def test_tests_and_tools_exempt(self):
        code = "import random\nx = random.random()\n"
        assert not lint(code, path="tests/test_x.py", rules=["D1"])
        assert not lint(code, path="tools/gen.py", rules=["D1"])

    def test_unrelated_attribute_clean(self):
        # A .choice attribute on a non-random object is not the module RNG.
        assert not unsuppressed("""
            def pick(rng, items):
                return rng.choice(items)
        """, rules=["D1"])


class TestD2WallClock:
    def test_plain_name_assignment_flagged(self):
        findings = unsuppressed("""
            import time

            def f():
                start = time.perf_counter()
                return start
        """, rules=["D2"])
        assert len(findings) == 1
        assert "'start'" in findings[0].message

    def test_wall_prefixed_assignment_clean(self):
        assert not unsuppressed("""
            import time

            def f(self):
                wall_t0 = time.perf_counter()
                self._wall_started = time.time()
                return wall_t0
        """, rules=["D2"])

    def test_bare_call_in_expression_flagged(self):
        findings = unsuppressed("""
            import time

            def f():
                return {"t": time.time()}
        """, rules=["D2"])
        assert len(findings) == 1
        assert "outside an assignment" in findings[0].message

    def test_datetime_now_flagged(self):
        findings = unsuppressed("""
            from datetime import datetime

            def f():
                stamp = datetime.now()
                return stamp
        """, rules=["D2"])
        assert len(findings) == 1

    def test_tuple_target_must_be_all_wall(self):
        findings = unsuppressed("""
            import time

            def f():
                wall_a, b = time.time(), 1
                return wall_a, b
        """, rules=["D2"])
        assert len(findings) == 1

    def test_augassign_to_wall_name_clean(self):
        assert not unsuppressed("""
            import time

            def f(self):
                self.wall_total += time.perf_counter()
        """, rules=["D2"])


class TestD3OrderedIteration:
    PATH = "src/repro/routing/_inline.py"

    def test_for_over_set_literal_flagged(self):
        findings = unsuppressed("""
            def f():
                for x in {1, 2, 3}:
                    print(x)
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1
        assert "set" in findings[0].message

    def test_for_over_inferred_set_name_flagged(self):
        findings = unsuppressed("""
            def f(items):
                nodes = set(items)
                for n in nodes:
                    print(n)
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1
        assert "'nodes'" in findings[0].message

    def test_sorted_iteration_clean(self):
        assert not unsuppressed("""
            def f(items):
                nodes = set(items)
                for n in sorted(nodes):
                    print(n)
        """, path=self.PATH, rules=["D3"])

    def test_set_annotated_parameter_flagged(self):
        findings = unsuppressed("""
            from typing import Set

            def f(nodes: Set[str]):
                return [n for n in nodes]
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1

    def test_chained_assignment_inferred(self):
        findings = unsuppressed("""
            def f(items):
                b = set(items)
                a = b
                for x in a:
                    print(x)
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1

    def test_set_operator_result_flagged(self):
        findings = unsuppressed("""
            def f(a, b):
                both = set(a) | set(b)
                for x in both:
                    print(x)
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1

    def test_keys_iteration_flagged(self):
        findings = unsuppressed("""
            def f(table):
                return [k for k in table.keys()]
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1
        assert ".keys()" in findings[0].message

    def test_dictcomp_over_set_flagged(self):
        # The real hazard this rule caught twice: dict insertion order
        # leaks the set's iteration order.
        findings = unsuppressed("""
            def f(dist, settled):
                settled = set(settled)
                return {n: dist[n] for n in settled}
        """, path=self.PATH, rules=["D3"])
        assert len(findings) == 1

    def test_setcomp_over_set_exempt(self):
        # A set comprehension's output has no order to corrupt.
        assert not unsuppressed("""
            def f(items):
                nodes = set(items)
                return {n + 1 for n in nodes}
        """, path=self.PATH, rules=["D3"])

    def test_rule_scoped_to_order_sensitive_packages(self):
        code = """
            def f():
                for x in {1, 2}:
                    print(x)
        """
        assert not lint(code, path="src/repro/experiments/_inline.py",
                        rules=["D3"])
        for part in ("routing", "net", "vnbone", "bgp"):
            assert lint(code, path=f"src/repro/{part}/_inline.py",
                        rules=["D3"])


class TestD4HotPathGuards:
    def test_unguarded_metric_update_flagged(self):
        findings = unsuppressed("""
            def forward(self, packet):
                self._c_forwarded.inc()
        """, rules=["D4"])
        assert len(findings) == 1
        assert ".inc(" in findings[0].message

    def test_guarded_update_clean(self):
        assert not unsuppressed("""
            def forward(self, packet):
                if self.obs.enabled:
                    self._c_forwarded.inc()
        """, rules=["D4"])

    def test_alias_guard_recognized(self):
        assert not unsuppressed("""
            def forward(self, obs, packet):
                observed = obs.enabled
                if observed:
                    self._c_forwarded.inc()
        """, rules=["D4"])

    def test_early_bailout_guard_recognized(self):
        assert not unsuppressed("""
            def _observe(self, trace):
                if not self.obs.enabled:
                    return
                self._c_delivered.inc()
                self.obs.event("delivered", trace=trace)
        """, rules=["D4"])

    def test_guard_does_not_leak_into_new_function(self):
        findings = unsuppressed("""
            def outer(self):
                if self.obs.enabled:
                    def inner():
                        self._c_x.inc()
                    return inner
        """, rules=["D4"])
        assert len(findings) == 1

    def test_obs_event_flagged(self):
        findings = unsuppressed("""
            def f(self, obs):
                obs.event("hop", router="r1")
        """, rules=["D4"])
        assert len(findings) == 1

    def test_obs_package_exempt(self):
        assert not lint("""
            def f(self):
                self._c_x.inc()
        """, path="src/repro/obs/_inline.py", rules=["D4"])


class TestD5PublicApi:
    def test_mutable_default_flagged(self):
        findings = unsuppressed("""
            def f(items=[]):
                return items
        """, rules=["D5"])
        assert len(findings) == 1
        assert "mutable default" in findings[0].message

    def test_dict_call_default_flagged(self):
        findings = unsuppressed("""
            def f(options=dict()):
                return options
        """, rules=["D5"])
        assert len(findings) == 1

    def test_none_default_clean(self):
        assert not unsuppressed("""
            def f(items=None, extras=(), names=frozenset()):
                return items, extras, names
        """, rules=["D5"])

    def test_assert_in_public_function_flagged(self):
        findings = unsuppressed("""
            def deploy(fraction):
                assert 0 < fraction <= 1
                return fraction
        """, rules=["D5"])
        assert len(findings) == 1
        assert "python -O" in findings[0].message

    def test_assert_in_private_function_clean(self):
        assert not unsuppressed("""
            def _internal(x):
                assert x is not None
                return x
        """, rules=["D5"])

    def test_assert_in_public_method_of_public_class_flagged(self):
        findings = unsuppressed("""
            class Deployment:
                def deploy(self, fraction):
                    assert fraction > 0
        """, rules=["D5"])
        assert len(findings) == 1

    def test_assert_in_private_method_clean(self):
        assert not unsuppressed("""
            class Deployment:
                def _check(self, fraction):
                    assert fraction > 0
        """, rules=["D5"])

    def test_typed_exception_clean(self):
        assert not unsuppressed("""
            from repro.net.errors import DeploymentError

            def deploy(fraction):
                if not 0 < fraction <= 1:
                    raise DeploymentError("bad fraction")
                return fraction
        """, rules=["D5"])
