"""S-rule tests: emitter/validator schema drift, both directions."""

import textwrap

from repro.analysis import lint_project_sources


def project(files, rules=("S1", "S2")):
    texts = {path: textwrap.dedent(text) for path, text in files.items()}
    return lint_project_sources(texts, rule_ids=list(rules))


def rule_ids(report):
    return [f.rule_id for f in report.actionable]


VALIDATOR = """
    SCHEMA = "repro.test/v1"

    def validate(doc):
        errors = []
        if doc.get("schema") != SCHEMA:
            errors.append("schema")
        if "alpha" not in doc:
            errors.append("alpha")
        return errors
"""


class TestEmitterMissingKey:
    def test_missing_required_key_flagged(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):
                    return {"schema": SCHEMA}
            """,
            "src/repro/report/check.py": VALIDATOR,
        })
        assert rule_ids(report) == ["S1"]
        assert "'alpha'" in report.actionable[0].message

    def test_optional_key_not_required(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):
                    return {"schema": SCHEMA, "alpha": payload}
            """,
            "src/repro/report/check.py": """
                SCHEMA = "repro.test/v1"

                def validate(doc):
                    errors = []
                    if doc.get("schema") != SCHEMA:
                        errors.append("schema")
                    if "alpha" not in doc:
                        errors.append("alpha")
                    if doc.get("note", "") == "skip":
                        errors.append("note")
                    return errors
            """,
        })
        assert report.ok

    def test_matching_pair_clean(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):
                    return {"schema": SCHEMA, "alpha": payload}
            """,
            "src/repro/report/check.py": VALIDATOR,
        })
        assert report.ok


class TestEmitterUnknownKey:
    def test_unknown_emitted_key_flagged(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):
                    return {"schema": SCHEMA, "alpha": payload, "extra": 1}
            """,
            "src/repro/report/check.py": VALIDATOR,
        })
        assert rule_ids(report) == ["S2"]
        assert "'extra'" in report.actionable[0].message

    def test_open_schema_validator_skips_s2(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):
                    return {"schema": SCHEMA, "alpha": payload, "extra": 1}
            """,
            "src/repro/report/check.py": """
                SCHEMA = "repro.test/v1"

                def validate(doc):
                    if doc.get("schema") != SCHEMA:
                        return ["schema"]
                    return [key for key, value in doc.items()
                            if value is None]
            """,
        })
        assert report.ok

    def test_dynamic_emitter_skipped(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload, **extra):
                    return {"schema": SCHEMA, **extra}
            """,
            "src/repro/report/check.py": VALIDATOR,
        })
        assert report.ok

    def test_augmented_emitter_keys_counted(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):
                    doc = {"schema": SCHEMA, "alpha": payload}
                    doc["extra"] = 1
                    return doc
            """,
            "src/repro/report/check.py": VALIDATOR,
        })
        assert rule_ids(report) == ["S2"]


class TestPairing:
    def test_one_sided_schema_skipped(self):
        report = project({
            "src/repro/report/emit.py": """
                def emit(payload):
                    return {"schema": "repro.lonely/v1", "alpha": payload}
            """,
        })
        assert report.ok

    def test_schemas_diffed_independently(self):
        report = project({
            "src/repro/report/emit.py": """
                def emit_a(payload):
                    return {"schema": "repro.a/v1", "alpha": payload}

                def emit_b(payload):
                    return {"schema": "repro.b/v1", "beta": payload}
            """,
            "src/repro/report/check.py": """
                def validate_a(doc):
                    if doc.get("schema") != "repro.a/v1":
                        return ["schema"]
                    if "alpha" not in doc:
                        return ["alpha"]
                    return []

                def validate_b(doc):
                    if doc.get("schema") != "repro.b/v1":
                        return ["schema"]
                    if "gamma" not in doc:
                        return ["gamma"]
                    return []
            """,
        })
        findings = report.actionable
        assert {f.rule_id for f in findings} == {"S1", "S2"}
        assert all("repro.b/v1" in f.message for f in findings)
