"""Suppression scoping across the C/P/S families, plus W1 staleness."""

import textwrap

from repro.analysis import (UNUSED_SUPPRESSION_ID, Baseline, Severity,
                            lint_paths, lint_project_sources)


def project(files, rules=None, **kw):
    texts = {path: textwrap.dedent(text) for path, text in files.items()}
    return lint_project_sources(texts, rule_ids=rules, **kw)


class TestProjectRuleSuppression:
    def test_line_level_allow_c1(self):
        report = project({"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}

                def drop_link(self, key):
                    del self.links[key]  # repro: allow[C1]
        """}, rules=["C1"])
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule_id == "C1"

    def test_def_line_allow_covers_whole_runner(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            _CACHE = {}

            @register("demo")
            def runner(seed, params):  # repro: allow[P1]
                _CACHE[seed] = params
                _CACHE["last"] = seed
                return {"result": 1}
        """}, rules=["P1"])
        assert report.ok
        assert len(report.suppressed) == 2
        assert all(f.rule_id == "P1" for f in report.suppressed)

    def test_allow_is_rule_specific_across_families(self):
        report = project({"src/repro/experiments/demo.py": """
            import time
            from repro.experiments.base import register

            _CACHE = {}

            @register("demo")
            def runner(seed, params):  # repro: allow[P1]
                _CACHE[seed] = params
                return {"elapsed": time.time()}
        """}, rules=["P1", "P3"])
        assert not report.ok
        assert [f.rule_id for f in report.actionable] == ["P3"]
        assert [f.rule_id for f in report.suppressed] == ["P1"]

    def test_def_line_allow_s1(self):
        report = project({
            "src/repro/report/emit.py": """
                SCHEMA = "repro.test/v1"

                def emit(payload):  # repro: allow[S1]
                    return {"schema": SCHEMA}
            """,
            "src/repro/report/check.py": """
                SCHEMA = "repro.test/v1"

                def validate(doc):
                    if "alpha" not in doc:
                        return ["alpha"]
                    return [] if doc.get("schema") == SCHEMA else ["schema"]
            """,
        }, rules=["S1"])
        assert report.ok
        assert len(report.suppressed) == 1

    def test_suppressed_never_enters_baseline(self):
        files = {"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}

                def drop_link(self, key):
                    del self.links[key]  # repro: allow[C1]
        """}
        report = project(files, rules=["C1"])
        assert Baseline.from_findings(report.findings).entries == {}

    def test_baseline_and_suppression_do_not_overlap(self):
        files = {"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}

                def drop_link(self, key):
                    del self.links[key]  # repro: allow[C1]

                def drop_other(self, key):
                    del self.links[key]
        """}
        first = project(files, rules=["C1"])
        baseline = Baseline.from_findings(first.findings)
        report = project(files, rules=["C1"], baseline=baseline)
        assert report.ok
        assert len(report.suppressed) == 1
        assert len(report.baselined) == 1
        assert not report.suppressed[0].baselined


class TestUnusedSuppressionWarnings:
    def test_stale_pragma_warned(self):
        report = project({"src/repro/net/core.py": """
            def helper(x):
                return x + 1  # repro: allow[C1]
        """}, warn_unused_suppressions=True)
        warnings = [f for f in report.findings
                    if f.rule_id == UNUSED_SUPPRESSION_ID]
        assert len(warnings) == 1
        assert "C1" in warnings[0].message
        assert warnings[0].severity is Severity.WARNING
        assert report.ok  # warnings inform, they do not gate

    def test_used_pragma_not_warned(self):
        report = project({"src/repro/net/core.py": """
            class Network:
                def __init__(self):
                    self.links = {}

                def drop_link(self, key):
                    del self.links[key]  # repro: allow[C1]
        """}, warn_unused_suppressions=True)
        assert not any(f.rule_id == UNUSED_SUPPRESSION_ID
                       for f in report.findings)

    def test_scope_pragma_used_deep_in_function_not_warned(self):
        report = project({"src/repro/experiments/demo.py": """
            from repro.experiments.base import register

            _CACHE = {}

            @register("demo")
            def runner(seed, params):  # repro: allow[P1]
                if params:
                    _CACHE[seed] = params
                return {"result": 1}
        """}, warn_unused_suppressions=True)
        assert not any(f.rule_id == UNUSED_SUPPRESSION_ID
                       for f in report.findings)

    def test_unused_star_pragma_warned(self):
        report = project({"src/repro/net/core.py": """
            def helper(x):
                return x + 1  # repro: allow[*]
        """}, warn_unused_suppressions=True)
        warnings = [f for f in report.findings
                    if f.rule_id == UNUSED_SUPPRESSION_ID]
        assert len(warnings) == 1

    def test_project_only_pragma_not_judged_in_per_file_run(self, tmp_path):
        target = tmp_path / "src" / "repro" / "net"
        target.mkdir(parents=True)
        (target / "mod.py").write_text(
            "def helper(x):\n    return x + 1  # repro: allow[C1]\n")
        report = lint_paths([str(tmp_path)], warn_unused_suppressions=True)
        assert not any(f.rule_id == UNUSED_SUPPRESSION_ID
                       for f in report.findings)

    def test_off_by_default(self):
        report = project({"src/repro/net/core.py": """
            def helper(x):
                return x + 1  # repro: allow[C1]
        """})
        assert not any(f.rule_id == UNUSED_SUPPRESSION_ID
                       for f in report.findings)
