"""Tests for the offline trace-analysis toolkit (repro.analyze)."""
