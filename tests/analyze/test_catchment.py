"""The catchment observatory: epoch assignment, shift/flap attribution,
schema, and the byte-identity guarantees the acceptance criteria pin.

Synthetic-sample tests exercise the analyzer alone; the seeded
``rtt_catchment`` runs exercise the whole measurement plane (probe
engine + fault injector + analyzer) end to end.
"""

import json

import pytest

from repro.analyze import (CATCHMENT_SCHEMA, build_catchment,
                           catchment_from_trace, render_catchment,
                           validate_catchment_dict)
from repro.experiments import run
from repro.net.fastpath import flow_fastpath
from repro.obs import Observability, Tracer
from repro.perf import caching


def sample(t, vantage="v0", target="svc", replica="a", rtt=4.0,
           best_rtt=4.0):
    return {"t": t, "vantage": vantage, "target": target,
            "replica": replica, "rtt": rtt, "best_rtt": best_rtt,
            "best_replica": replica}


def lost(t, vantage="v0", target="svc"):
    return {"t": t, "vantage": vantage, "target": target, "replica": None,
            "rtt": None, "best_rtt": None, "best_replica": None}


BOUNDARIES = ({"t": 10.0, "description": "node-crash a"},
              {"t": 50.0, "description": "node-recover a"})


class TestEpochAssignment:
    def test_boundaries_open_epochs(self):
        doc = build_catchment([sample(0.0), sample(20.0), sample(60.0)],
                              BOUNDARIES)
        assert [e["probes"] for e in doc["epochs"]] == [1, 1, 1]
        assert doc["epochs"][1]["boundaries"] == ["node-crash a"]

    def test_sample_at_boundary_belongs_to_the_earlier_epoch(self):
        # The scheduler fires a probe due exactly at a fault boundary
        # before the fault applies; the analyzer must agree.
        doc = build_catchment([sample(10.0)], BOUNDARIES)
        assert [e["probes"] for e in doc["epochs"]] == [1, 0, 0]

    def test_simultaneous_faults_share_one_epoch(self):
        doubled = ({"t": 10.0, "description": "link-fail x"},
                   {"t": 10.0, "description": "link-fail y"})
        doc = build_catchment([sample(0.0)], doubled)
        assert len(doc["epochs"]) == 2
        assert doc["epochs"][1]["boundaries"] == ["link-fail x",
                                                  "link-fail y"]


class TestShiftAndFlapAttribution:
    def test_change_across_a_boundary_is_a_shift(self):
        doc = build_catchment(
            [sample(0.0, replica="a"), sample(20.0, replica="b")],
            BOUNDARIES)
        assert doc["shifts"]["count"] == 1
        assert doc["flaps"]["count"] == 0
        shift = doc["epochs"][1]["shifts"][0]
        assert (shift["from"], shift["to"]) == ("a", "b")

    def test_change_within_an_epoch_is_a_flap(self):
        doc = build_catchment(
            [sample(12.0, replica="a"), sample(20.0, replica="b")],
            BOUNDARIES)
        assert doc["shifts"]["count"] == 0
        assert doc["flaps"]["count"] == 1
        flap = doc["flaps"]["events"][0]
        assert (flap["from"], flap["to"], flap["t"]) == ("a", "b", 20.0)

    def test_loss_between_observations_does_not_reset_attribution(self):
        doc = build_catchment(
            [sample(0.0, replica="a"), lost(12.0),
             sample(20.0, replica="b")], BOUNDARIES)
        assert doc["shifts"]["count"] == 1
        assert doc["flaps"]["count"] == 0

    def test_convergence_time_is_first_all_delivered_round(self):
        samples = [sample(0.0, vantage="v0"), sample(0.0, vantage="v1"),
                   lost(12.0, vantage="v0"), sample(12.0, vantage="v1"),
                   sample(17.0, vantage="v0", replica="b"),
                   sample(17.0, vantage="v1")]
        doc = build_catchment(samples, BOUNDARIES)
        assert doc["epochs"][0]["convergence_time"] is None  # baseline
        assert doc["epochs"][1]["convergence_time"] == 7.0

    def test_rtt_inflation_percentiles(self):
        samples = [sample(0.0, rtt=4.0, best_rtt=4.0),
                   sample(1.0, rtt=6.0, best_rtt=4.0)]
        doc = build_catchment(samples, ())
        assert doc["rtt_inflation"]["p50"] == 1.0
        assert doc["rtt_inflation"]["p99"] == 1.5


class TestSchema:
    def test_built_documents_validate(self):
        doc = build_catchment([sample(0.0), lost(20.0)], BOUNDARIES,
                              context={"seed": 1})
        assert doc["schema"] == CATCHMENT_SCHEMA
        assert validate_catchment_dict(doc) == []

    def test_validation_flags_missing_sections(self):
        doc = build_catchment([sample(0.0)], ())
        broken = dict(doc)
        del broken["rtt_inflation"]
        broken["schema"] = "repro.catchment/v0"
        problems = validate_catchment_dict(broken)
        assert any("schema" in p for p in problems)
        assert any("rtt_inflation" in p for p in problems)

    def test_rendering_mentions_shifts_and_flaps(self):
        doc = build_catchment(
            [sample(0.0, replica="a"), sample(20.0, replica="b"),
             sample(30.0, replica="a")], BOUNDARIES)
        text = render_catchment(doc)
        assert "shift:" in text
        assert "flap at t=30.0" in text


@pytest.mark.slow
class TestSeededMeasurementPlane:
    def test_serving_victim_shifts_are_fault_attributed(self):
        result = run("rtt_catchment", seed=19,
                     params={"serving_victim": True})
        doc = result.data["catchment"]
        assert validate_catchment_dict(doc) == []
        assert doc["shifts"]["count"] >= 1
        assert doc["flaps"]["count"] == 0
        # Every shift lands in a post-fault epoch, never the baseline.
        assert all(not e["shifts"] for e in doc["epochs"] if e["epoch"] == 0)

    def test_trace_derived_catchment_matches_in_memory(self):
        obs = Observability(tracer=Tracer(context={"experiment":
                                                   "rtt_catchment",
                                                   "seed": 19}))
        result = run("rtt_catchment", seed=19, obs=obs)
        obs.close()
        from_trace = dict(catchment_from_trace(obs.tracer.events()))
        in_memory = dict(result.data["catchment"])
        # The two sides carry different run contexts by construction;
        # everything else must match byte for byte.
        from_trace.pop("run")
        in_memory.pop("run")
        assert (json.dumps(from_trace, sort_keys=True)
                == json.dumps(in_memory, sort_keys=True))

    def test_byte_identical_across_fastpath_modes(self):
        with flow_fastpath(True):
            fast = run("rtt_catchment", seed=19).data["catchment"]
        with flow_fastpath(False):
            slow = run("rtt_catchment", seed=19).data["catchment"]
        assert (json.dumps(fast, sort_keys=True)
                == json.dumps(slow, sort_keys=True))

    def test_byte_identical_across_caching_modes(self):
        with caching(True):
            cached = run("rtt_catchment", seed=19).data["catchment"]
        with caching(False):
            uncached = run("rtt_catchment", seed=19).data["catchment"]
        assert (json.dumps(cached, sort_keys=True)
                == json.dumps(uncached, sort_keys=True))
