"""Streaming reader and span-forest reconstruction."""

import json

from repro.analyze import build_span_forest, iter_trace_events
from repro.analyze.reader import as_float, as_str


def write_trace(tmp_path, events):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n",
                    encoding="utf-8")
    return str(path)


def start(span_id, name, trace_id="t0001", parent=None, t=None, **fields):
    event = {"kind": "span.start", "span_id": span_id, "trace_id": trace_id,
             "name": name, **fields}
    if parent is not None:
        event["parent_id"] = parent
    if t is not None:
        event["t"] = t
    return event


def end(span_id, name, trace_id="t0001", t=None, **fields):
    event = {"kind": "span.end", "span_id": span_id, "trace_id": trace_id,
             "name": name, **fields}
    if t is not None:
        event["t"] = t
    return event


class TestIterTraceEvents:
    def test_streams_json_objects_and_skips_junk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "a", "seq": 0}\n'
                        "\n"
                        "not json\n"
                        "[1, 2]\n"
                        '{"kind": "b", "seq": 1}\n', encoding="utf-8")
        kinds = [event["kind"] for event in iter_trace_events(path)]
        assert kinds == ["a", "b"]

    def test_is_lazy(self, tmp_path):
        path = write_trace(tmp_path, [{"kind": "e", "seq": n}
                                      for n in range(50)])
        stream = iter_trace_events(path)
        assert next(stream)["seq"] == 0
        assert next(stream)["seq"] == 1


class TestNarrowing:
    def test_as_float_rejects_bools_and_strings(self):
        assert as_float(2) == 2.0
        assert as_float(2.5) == 2.5
        assert as_float(True) is None
        assert as_float("3") is None
        assert as_float(None) is None

    def test_as_str(self):
        assert as_str("x") == "x"
        assert as_str(3) is None


class TestBuildSpanForest:
    def test_parent_links_and_roots(self):
        events = [start("s1", "epoch", t=10.0),
                  start("s2", "apply", parent="s1", t=10.0),
                  end("s2", "apply", t=10.0),
                  end("s1", "epoch", t=12.0, faults=1)]
        forest = build_span_forest(events)
        assert forest.roots == ["s1"]
        root = forest.get("s1")
        assert root.children == ["s2"]
        assert root.duration == 2.0
        assert root.end_fields == {"faults": 1}
        assert root.ended
        child = forest.get("s2")
        assert child.parent_id == "s1"
        assert child.t_start == 10.0

    def test_unended_span_has_no_duration(self):
        forest = build_span_forest([start("s1", "holddown", t=1.0)])
        node = forest.get("s1")
        assert not node.ended
        assert node.duration is None

    def test_walk_is_preorder(self):
        events = [start("s1", "a"), start("s2", "b", parent="s1"),
                  start("s3", "c", parent="s2"),
                  start("s4", "d", parent="s1")]
        forest = build_span_forest(events)
        assert [node.span_id for node in forest.walk("s1")] == ["s1", "s2",
                                                                "s3", "s4"]

    def test_ancestor_lookup(self):
        events = [start("s1", "epoch"), start("s2", "rebuild", parent="s1"),
                  start("s3", "reconverge", parent="s2")]
        forest = build_span_forest(events)
        assert forest.ancestor("s3", "epoch").span_id == "s1"
        assert forest.ancestor("s3", "reconverge").span_id == "s3"
        assert forest.ancestor("s1", "missing") is None

    def test_by_name_in_start_order(self):
        events = [start("s1", "forward"), start("s2", "epoch"),
                  start("s3", "forward")]
        forest = build_span_forest(events)
        assert [n.span_id for n in forest.by_name("forward")] == ["s1", "s3"]

    def test_skip_predicate_excludes_high_volume_spans(self):
        events = [start("s1", "epoch"),
                  start("s2", "forward", parent="s1"),
                  end("s2", "forward"),
                  start("s3", "apply", parent="s1")]
        forest = build_span_forest(events,
                                   skip=lambda name: name == "forward")
        assert "s2" not in forest.spans
        assert [n.span_id for n in forest.children_of("s1")] == ["s3"]

    def test_start_fields_exclude_identity_keys(self):
        events = [start("s1", "epoch", t=5.0, seq=3, epoch=0)]
        forest = build_span_forest(events)
        assert forest.get("s1").fields == {"epoch": 0}
