"""Report building on a real seeded trace, plus schema and rendering.

The module-scoped fixture runs the observability acceptance scenario
(``anycast_failover``) once under a traced handle; every test then
reads the same in-memory event stream — mirroring how the CLI analyzes
a trace file, without touching disk.
"""

import json

import pytest

from repro.analyze import (REPORT_SCHEMA, build_report, render_report,
                           validate_report_dict)
from repro.experiments import run
from repro.obs import Observability, Tracer


@pytest.fixture(scope="module")
def traced_events():
    obs = Observability(tracer=Tracer(context={"experiment":
                                               "anycast_failover",
                                               "seed": 7}))
    run("anycast_failover", seed=7, obs=obs)
    obs.close()
    return obs.tracer.events()


@pytest.fixture(scope="module")
def report(traced_events):
    return build_report(traced_events)


@pytest.mark.slow
class TestReportOnSeededRun:
    def test_schema_validates(self, report):
        assert report["schema"] == REPORT_SCHEMA
        assert validate_report_dict(report) == []

    def test_run_context_is_carried(self, report):
        assert report["run"]["context"]["seed"] == 7
        assert report["run"]["trace_schema"] == "repro.trace/v3"
        assert report["run"]["complete"] is True

    def test_critical_path_has_nonzero_phases(self, report):
        epochs = report["epochs"]
        assert len(epochs) == 2  # crash epoch + recovery epoch
        for entry in epochs:
            path = entry["critical_path"]
            assert path["igp_holddown"] > 0  # HOLD_DOWN_DELAY
            assert path["igp_flood_spf"] > 0  # LSA flood + SPF
            assert path["total"] is not None and path["total"] > 0
            phases = (path["igp_holddown"] + path["igp_flood_spf"]
                      + path["bgp_resync"] + path["vnbone_rebuild"]
                      + path["other"])
            assert phases == pytest.approx(path["total"])

    def test_first_recovered_delivery_anchors_the_total(self, report):
        for entry in report["epochs"]:
            t0 = entry["t0"]
            first = entry["first_recovered_delivery_t"]
            assert first is not None
            assert entry["critical_path"]["total"] == pytest.approx(
                first - t0)

    def test_per_phase_delivery_from_forwarding_spans_alone(self, report):
        for entry in report["epochs"]:
            for side in ("transient", "recovered"):
                delivery = entry[side]
                assert delivery is not None
                assert delivery["attempted"] > 0
                assert delivery["delivered"] <= delivery["attempted"]

    def test_forwarding_distributions_are_populated(self, report):
        forwarding = report["forwarding"]
        assert forwarding["packets"] > 0
        dists = forwarding["distributions"]
        assert set(dists) == {"physical_hops", "vn_hops", "encapsulations",
                              "decapsulations", "max_depth", "latency"}
        hops = dists["physical_hops"]
        assert hops["count"] == forwarding["packets"]
        assert hops["min"] <= hops["mean"] <= hops["max"]
        assert hops["stddev"] >= 0

    def test_stretch_comes_from_reach_probes(self, report):
        probes = report["probes"]
        assert probes["count"] > 0
        assert probes["stretch"]["count"] > 0
        assert probes["stretch"]["min"] >= 1.0  # stretch is a ratio

    def test_timeline_ticks_are_ordered(self, report):
        timeline = report["timeline"]
        assert timeline, "sampler emitted no metric.sample events"
        times = [entry["t"] for entry in timeline]
        assert times == sorted(times)
        assert "scheduler.events_fired" in timeline[0]["counters"]

    def test_report_is_deterministic(self, traced_events, report):
        again = build_report(iter(traced_events))
        assert (json.dumps(again, sort_keys=True)
                == json.dumps(report, sort_keys=True))

    def test_report_is_json_serializable(self, report):
        json.dumps(report)

    def test_render_mentions_the_headline_numbers(self, report):
        text = render_report(report)
        assert "critical path" in text
        assert "blackholes: 0" in text
        assert "repro.report/v1" in text
        assert "convergence timeline" in text


class TestSyntheticTraces:
    def run_events(self, events):
        doc = build_report(iter(events))
        assert validate_report_dict(doc) == []
        return doc

    def test_empty_stream_yields_a_valid_empty_report(self):
        doc = self.run_events([])
        assert doc["epochs"] == []
        assert doc["forwarding"]["packets"] == 0
        assert doc["run"]["complete"] is False

    def test_blackholes_detected_from_forward_spans_alone(self):
        events = [
            {"kind": "span.start", "span_id": "s1", "trace_id": "t1",
             "name": "forward", "t": 1.0},
            {"kind": "span.end", "span_id": "s1", "trace_id": "t1",
             "name": "forward", "t": 1.0, "outcome": "no-route",
             "physical_hops": 2, "drop_reason": "no IPv4 route at r1"},
            {"kind": "span.start", "span_id": "s2", "trace_id": "t2",
             "name": "forward", "t": 2.0},
            {"kind": "span.end", "span_id": "s2", "trace_id": "t2",
             "name": "forward", "t": 2.0, "outcome": "loop",
             "physical_hops": 64},
        ]
        doc = self.run_events(events)
        blackholes = doc["forwarding"]["blackholes"]
        assert blackholes["count"] == 1
        assert blackholes["by_outcome"] == {"no-route": 1}
        assert blackholes["examples"][0]["drop_reason"].startswith("no IPv4")
        loops = doc["forwarding"]["loops"]
        assert loops["count"] == 1
        assert loops["by_outcome"] == {"loop": 1}

    def test_example_lists_are_bounded(self):
        events = []
        for n in range(50):
            events.append({"kind": "span.start", "span_id": f"s{n}",
                           "trace_id": f"t{n}", "name": "forward"})
            events.append({"kind": "span.end", "span_id": f"s{n}",
                           "trace_id": f"t{n}", "name": "forward",
                           "outcome": "no-route"})
        doc = self.run_events(events)
        assert doc["forwarding"]["blackholes"]["count"] == 50
        assert len(doc["forwarding"]["blackholes"]["examples"]) == 10

    def test_schema_validator_flags_drift(self):
        doc = build_report(iter([]))
        doc["schema"] = "repro.report/v99"
        del doc["forwarding"]["blackholes"]
        doc["epochs"] = [{"critical_path": {"igp_holddown": "fast"}}]
        problems = validate_report_dict(doc)
        assert any("schema" in p for p in problems)
        assert any("blackholes" in p for p in problems)
        assert any("igp_holddown" in p for p in problems)

    def test_render_handles_an_empty_report(self):
        doc = build_report(iter([]))
        text = render_report(doc)
        assert "no fault epochs" in text
        assert "no sampler attached" in text
