"""Tests for option 2: default-ISP-rooted anycast (the paper's preferred)."""

import pytest

from repro.net import Prefix
from repro.net.errors import DeploymentError
from repro.anycast import DefaultRootedAnycast
from repro.core.orchestrator import Orchestrator
from repro.topogen import figure2


class TestAddressing:
    def test_address_from_default_isp_block(self, converged_hub):
        scheme = DefaultRootedAnycast(converged_hub, "d", default_asn=2)
        domain = converged_hub.network.domains[2]
        assert domain.prefix.contains(scheme.address)

    def test_unknown_default_rejected(self, converged_hub):
        with pytest.raises(DeploymentError):
            DefaultRootedAnycast(converged_hub, "d", default_asn=99)

    def test_no_new_bgp_routes(self, converged_hub):
        """The whole point of option 2: joining adds nothing to BGP."""
        before = converged_hub.bgp.total_rib_size()
        scheme = DefaultRootedAnycast(converged_hub, "d", default_asn=2)
        scheme.add_member("x2")
        scheme.add_member("y2")
        converged_hub.reconverge()
        assert converged_hub.bgp.total_rib_size() == before
        counts = scheme.routing_state_added()
        assert all(v == 0 for v in counts.values())


class TestRedirection:
    def test_packets_follow_route_to_default(self, converged_hub):
        scheme = DefaultRootedAnycast(converged_hub, "d", default_asn=2)
        scheme.add_member("x2")
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "x2"

    def test_on_path_adopter_intercepts(self, converged_hub):
        """A member in the hub W sits on Z's path to the default X and
        intercepts (the 'closest IPvN router along the path' property)."""
        scheme = DefaultRootedAnycast(converged_hub, "d", default_asn=2)
        scheme.add_member("x2")
        scheme.add_member("w2")
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "w2"

    def test_off_path_adopter_not_used_without_advertisement(self, converged_hub):
        scheme = DefaultRootedAnycast(converged_hub, "d", default_asn=2)
        scheme.add_member("x2")
        scheme.add_member("y2")  # Y is not on Z's path to X
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "x2"


class TestFigure2:
    def setup_scheme(self):
        fig = figure2()
        orch = Orchestrator(fig.network)
        orch.converge()
        scheme = DefaultRootedAnycast(orch, "vN", default_asn=fig.asn("D"))
        scheme.add_member("d1")
        scheme.add_member("q1")
        orch.reconverge()
        return fig, orch, scheme

    def test_x_and_y_terminate_in_default(self):
        fig, orch, scheme = self.setup_scheme()
        assert scheme.resolve("host_x") == "d1"
        assert scheme.resolve("host_y") == "d1"

    def test_z_reaches_q(self):
        fig, orch, scheme = self.setup_scheme()
        assert scheme.resolve("host_z") == "q1"

    def test_peering_advertisement_rewires_y(self):
        fig, orch, scheme = self.setup_scheme()
        scheme.advertise_to_neighbor(fig.asn("Q"), fig.asn("Y"))
        orch.reconverge()
        assert scheme.resolve("host_y") == "q1"
        # X is untouched by the bilateral agreement.
        assert scheme.resolve("host_x") == "d1"

    def test_advertisement_withdrawal_restores_default(self):
        fig, orch, scheme = self.setup_scheme()
        scheme.advertise_to_neighbor(fig.asn("Q"), fig.asn("Y"))
        orch.reconverge()
        scheme.withdraw_from_neighbor(fig.asn("Q"), fig.asn("Y"))
        orch.reconverge()
        assert scheme.resolve("host_y") == "d1"

    def test_bilateral_route_not_leaked(self):
        fig, orch, scheme = self.setup_scheme()
        scheme.advertise_to_neighbor(fig.asn("Q"), fig.asn("Y"))
        orch.reconverge()
        pfx = Prefix.host(scheme.address)
        # Y holds the /32; P (not party to the agreement) must not.
        assert orch.bgp.speaker(fig.asn("Y")).best_route(pfx) is not None
        assert orch.bgp.speaker(fig.asn("P")).best_route(pfx) is None

    def test_advertise_requires_membership(self):
        fig, orch, scheme = self.setup_scheme()
        with pytest.raises(DeploymentError):
            scheme.advertise_to_neighbor(fig.asn("X"), fig.asn("P"))

    def test_advertise_requires_adjacency(self):
        fig, orch, scheme = self.setup_scheme()
        with pytest.raises(DeploymentError):
            scheme.advertise_to_neighbor(fig.asn("Q"), fig.asn("X"))

    def test_default_share_metric(self):
        fig, orch, scheme = self.setup_scheme()
        share = scheme.default_share(["host_x", "host_y", "host_z"])
        assert share == pytest.approx(2 / 3)

    def test_domain_exit_withdraws_advertisements(self):
        fig, orch, scheme = self.setup_scheme()
        scheme.advertise_to_neighbor(fig.asn("Q"), fig.asn("Y"))
        orch.reconverge()
        scheme.remove_member("q1")
        orch.reconverge()
        assert scheme.resolve("host_y") == "d1"
        assert scheme.resolve("host_z") == "d1"
