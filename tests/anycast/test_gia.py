"""Tests for the GIA comparison scheme."""

import pytest

from repro.net import Outcome
from repro.net.errors import DeploymentError
from repro.anycast import GIA_INDICATOR, GiaAnycast


def make_scheme(orch, home_asn=2, **kwargs):
    scheme = GiaAnycast(orch, "gia", home_asn=home_asn, **kwargs)
    return scheme


class TestAddressing:
    def test_address_carries_indicator(self, converged_hub):
        scheme = make_scheme(converged_hub)
        assert GIA_INDICATOR.contains(scheme.address)

    def test_unknown_home_rejected(self, converged_hub):
        with pytest.raises(DeploymentError):
            GiaAnycast(converged_hub, "gia", home_asn=42)


class TestHomeFallback:
    def test_routes_toward_home_domain(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2)
        scheme.add_member("x2")  # member in the home domain
        converged_hub.reconverge()
        scheme.post_converge_install()
        assert scheme.resolve("hz") == "x2"

    def test_search_finds_nearer_member(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2, search_ttl=1)
        scheme.add_member("x2")
        scheme.add_member("z2")  # member inside Z itself; IGP handles it
        converged_hub.reconverge()
        scheme.post_converge_install()
        assert scheme.resolve("hz") == "z2"

    def test_search_ttl_zero_always_home(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2, search_ttl=0)
        scheme.add_member("x2")
        scheme.add_member("y2")  # nearer in AS terms but beyond TTL 0
        converged_hub.reconverge()
        scheme.post_converge_install()
        assert scheme.resolve("hz") == "x2"

    def test_search_redirects_adjacent_domains(self, converged_hub):
        """W is adjacent to member domain Y: with search TTL 1, W's
        routers route to Y's member instead of the home X."""
        scheme = make_scheme(converged_hub, home_asn=2, search_ttl=1)
        scheme.add_member("x2")
        scheme.add_member("y2")
        converged_hub.reconverge()
        scheme.post_converge_install()
        resolved = scheme.resolve("w2")
        assert resolved in ("y2", "x2")
        # From Z (adjacent to W only), search TTL 1 reaches a member
        # domain? Z's neighbors: W (no members). Fallback: home.
        assert scheme.resolve("hz") in ("x2", "y2")


class TestCapability:
    def test_incapable_domain_cannot_route_gia(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2,
                             capable_asns={1, 2, 3})  # Z (AS4) not capable
        scheme.add_member("x2")
        converged_hub.reconverge()
        scheme.post_converge_install()
        trace = scheme.probe("hz")
        # hz's first-hop routers are in AS4 and do not understand the
        # indicator address: the deployment barrier GIA carries.
        assert trace.outcome is Outcome.NO_ROUTE

    def test_capable_domains_work(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2,
                             capable_asns={1, 2, 3})
        scheme.add_member("x2")
        converged_hub.reconverge()
        scheme.post_converge_install()
        assert scheme.resolve("w2") == "x2"

    def test_home_must_keep_a_member(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2)
        scheme.add_member("x2")
        scheme.add_member("y2")
        with pytest.raises(DeploymentError):
            scheme.remove_member("x2")


class TestAccounting:
    def test_home_derivation_adds_no_state(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2, search_ttl=0)
        scheme.add_member("x2")
        converged_hub.reconverge()
        scheme.post_converge_install()
        counts = scheme.routing_state_added()
        assert counts[2] == 1          # home registry entry
        assert counts[1] == 0 and counts[4] == 0

    def test_search_entries_counted(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2, search_ttl=1)
        scheme.add_member("x2")
        scheme.add_member("y2")
        converged_hub.reconverge()
        scheme.post_converge_install()
        counts = scheme.routing_state_added()
        # W (AS1) is adjacent to member domains and got a search entry
        # towards Y (nearer than home? both 1 hop; Y chosen only if it
        # is not the home). Whichever, search entries are >= 0 and the
        # home still holds its registry entry.
        assert counts[2] >= 1

    def test_reinstall_is_idempotent(self, converged_hub):
        scheme = make_scheme(converged_hub, home_asn=2)
        scheme.add_member("x2")
        converged_hub.reconverge()
        scheme.post_converge_install()
        first = scheme.resolve("hz")
        scheme.post_converge_install()
        assert scheme.resolve("hz") == first
