"""Tests for option 1: non-aggregatable anycast prefixes in BGP."""

import pytest

from repro.net import Outcome, Prefix
from repro.net.errors import DeploymentError
from repro.anycast import ANYCAST_POOL, AnycastAddressPool, GlobalAnycast


class TestAddressPool:
    def test_allocates_from_designated_block(self):
        pool = AnycastAddressPool()
        address = pool.allocate()
        assert ANYCAST_POOL.contains(address)

    def test_allocations_unique(self):
        pool = AnycastAddressPool()
        assert pool.allocate() != pool.allocate()

    def test_exhaustion(self):
        tiny = AnycastAddressPool(Prefix.parse("240.0.0.0/30"))
        for _ in range(3):
            tiny.allocate()
        with pytest.raises(DeploymentError):
            tiny.allocate()


class TestGlobalAnycast:
    def test_first_member_originates_route(self, converged_hub):
        scheme = GlobalAnycast(converged_hub, "g")
        scheme.add_member("x2")
        converged_hub.reconverge()
        pfx = Prefix.host(scheme.address)
        for asn in (1, 2, 3, 4):
            assert converged_hub.bgp.speaker(asn).best_route(pfx) is not None

    def test_seamless_spread_closer_member_wins(self, converged_hub):
        """Figure 1 semantics: as deployment spreads, clients are
        redirected to ever-closer members with no reconfiguration."""
        scheme = GlobalAnycast(converged_hub, "g")
        scheme.add_member("x2")
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "x2"
        scheme.add_member("z1")
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "z1"

    def test_withdrawal_on_domain_exit(self, converged_hub):
        scheme = GlobalAnycast(converged_hub, "g")
        scheme.add_member("x2")
        converged_hub.reconverge()
        scheme.remove_member("x2")
        converged_hub.reconverge()
        pfx = Prefix.host(scheme.address)
        assert converged_hub.bgp.speaker(4).best_route(pfx) is None
        assert scheme.resolve("hz") is None

    def test_non_propagating_isp_blackholes_customers(self, converged_hub):
        """The option-1 deployment concern: if an ISP on the path
        refuses to propagate anycast routes, its customers lose access
        (unless a member is inside or below them)."""
        converged_hub.network.domains[1].propagates_anycast = False  # hub W
        scheme = GlobalAnycast(converged_hub, "g")
        scheme.add_member("x2")  # member in X, behind the hub
        converged_hub.reconverge()
        trace = scheme.probe("hz")
        assert trace.outcome is Outcome.NO_ROUTE

    def test_non_propagating_isp_does_not_block_local_members(self, converged_hub):
        converged_hub.network.domains[1].propagates_anycast = False
        scheme = GlobalAnycast(converged_hub, "g")
        scheme.add_member("x2")
        scheme.add_member("z2")  # member in the client's own domain
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "z2"

    def test_intra_domain_interception_beats_bgp(self, converged_hub):
        """A member inside the client's domain wins over remote members
        even if BGP also carries the route (IGP /32 route)."""
        scheme = GlobalAnycast(converged_hub, "g")
        scheme.add_member("x2")
        scheme.add_member("z1")
        converged_hub.reconverge()
        trace = scheme.probe("hz")
        assert trace.delivered_to == "z1"
        assert trace.physical_hops <= 2

    def test_two_groups_two_addresses(self, converged_hub):
        pool = AnycastAddressPool()
        a = GlobalAnycast(converged_hub, "a", pool=pool)
        b = GlobalAnycast(converged_hub, "b", pool=pool)
        a.add_member("x2")
        b.add_member("y2")
        assert a.address != b.address
