"""Unit tests for the anycast service façade (membership, probes, metrics)."""

import pytest

from repro.net import ipv4
from repro.net.errors import DeploymentError
from repro.anycast import GlobalAnycast


@pytest.fixture
def scheme(converged_hub):
    return GlobalAnycast(converged_hub, "test-group")


class TestMembership:
    def test_add_member_configures_accept_and_advert(self, converged_hub, scheme):
        scheme.add_member("x2")
        node = converged_hub.network.node("x2")
        assert node.accepts_ipv4(scheme.address)
        igp = converged_hub.igp(2)
        assert igp.anycast_advertisers(scheme.address) == {"x2"}
        assert scheme.members == {"x2"}
        assert scheme.member_domains == {2}

    def test_add_member_idempotent(self, scheme):
        scheme.add_member("x2")
        scheme.add_member("x2")
        assert len(scheme.members) == 1

    def test_hosts_cannot_be_members(self, scheme):
        with pytest.raises(DeploymentError):
            scheme.add_member("hx")

    def test_remove_member_cleans_up(self, converged_hub, scheme):
        scheme.add_member("x2")
        scheme.add_member("x1")
        scheme.remove_member("x2")
        assert scheme.members == {"x1"}
        assert scheme.member_domains == {2}
        assert not converged_hub.network.node("x2").accepts_ipv4(scheme.address)
        scheme.remove_member("x1")
        assert scheme.member_domains == set()

    def test_remove_unknown_member_noop(self, scheme):
        scheme.remove_member("x2")  # never added; must not raise

    def test_members_in_domain(self, scheme):
        scheme.add_member("x1")
        scheme.add_member("x2")
        scheme.add_member("y1")
        assert scheme.members_in_domain(2) == {"x1", "x2"}
        assert scheme.members_in_domain(3) == {"y1"}


class TestResolution:
    def test_resolve_reaches_member(self, converged_hub, scheme):
        scheme.add_member("x2")
        converged_hub.reconverge()
        assert scheme.resolve("hz") == "x2"

    def test_resolve_none_without_members(self, converged_hub, scheme):
        _ = scheme.address
        converged_hub.reconverge()
        assert scheme.resolve("hz") is None

    def test_local_member_resolves_to_itself(self, converged_hub, scheme):
        scheme.add_member("x2")
        converged_hub.reconverge()
        assert scheme.resolve("x2") == "x2"

    def test_proximity_stretch_one_for_unique_member(self, converged_hub, scheme):
        scheme.add_member("x2")
        converged_hub.reconverge()
        assert scheme.proximity_stretch("hz") == pytest.approx(1.0)

    def test_proximity_stretch_none_when_unreachable(self, converged_hub, scheme):
        _ = scheme.address
        converged_hub.reconverge()
        assert scheme.proximity_stretch("hz") is None

    def test_optimal_member_cost(self, converged_hub, scheme):
        scheme.add_member("x2")
        scheme.add_member("z2")
        converged_hub.reconverge()
        best = scheme.optimal_member_cost("hz")
        assert best is not None
        member, cost = best
        assert member == "z2"
        assert cost == pytest.approx(1.0)


class TestAccounting:
    def test_routing_state_added(self, converged_hub, scheme):
        scheme.add_member("x2")
        converged_hub.reconverge()
        counts = scheme.routing_state_added()
        # Option 1: the host route appears in every AS's Loc-RIB.
        assert all(counts[asn] == 1 for asn in (1, 2, 3, 4))

    def test_describe_mentions_members(self, scheme):
        scheme.add_member("x2")
        text = scheme.describe()
        assert "members=1" in text
