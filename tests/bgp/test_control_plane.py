"""Unit tests for the control-plane install machinery.

Covers the egress-link cache (:mod:`repro.bgp.egress`), the
grouped-install switch, Adj-RIB-In pruning (no empty per-prefix dicts
survive a withdrawal or session flush), dirty-prefix tracking, and
MRAI-style update batching.  The end-to-end grouped-vs-seed
equivalence lives in ``test_install_equivalence``.
"""

import pytest

from repro.bgp.egress import (EgressCache, grouped_install,
                              grouped_install_enabled,
                              set_grouped_install_default)
from repro.bgp.routes import RouteScope
from repro.core.orchestrator import Orchestrator
from repro.net import Prefix, ipv4
from repro.perf.cache import caching
from tests.conftest import build_hub_network, build_two_domain_network


class TestEgressCache:
    def test_second_scan_is_a_hit(self, converged_two_domain):
        net = converged_two_domain.network
        cache = EgressCache(net, enabled=True)
        first = cache.links(1, 2)
        assert first == [("r1b", "r2b")]
        assert cache.links(1, 2) == first
        assert cache.stats() == {"hits": 1, "misses": 1,
                                 "invalidations": 0, "entries": 1}

    def test_no_session_means_no_links(self, converged_two_domain):
        cache = EgressCache(converged_two_domain.network, enabled=True)
        assert cache.links(1, 99) == []

    def test_version_bump_invalidates(self, converged_two_domain):
        net = converged_two_domain.network
        cache = EgressCache(net, enabled=True)
        assert cache.links(1, 2) == [("r1b", "r2b")]
        net.link_between("r1b", "r2b").fail()
        # The dead link must disappear from the recomputed answer.
        assert cache.links(1, 2) == []
        assert cache.invalidations == 1
        net.link_between("r1b", "r2b").restore()
        assert cache.links(1, 2) == [("r1b", "r2b")]
        assert cache.invalidations == 2

    def test_disabled_cache_always_rescans(self, converged_two_domain):
        net = converged_two_domain.network
        with caching(False):
            cache = EgressCache(net)  # inherits the caching() switch
        assert cache.enabled is False
        assert cache.links(1, 2) == cache.links(1, 2) == [("r1b", "r2b")]
        assert cache.hits == 0 and cache.misses == 2 and len(cache) == 0

    def test_protocol_egress_goes_through_the_cache(self, converged_hub):
        bgp = converged_hub.bgp
        misses = bgp.egress_cache.misses
        assert misses > 0
        hits_before = bgp.egress_cache.hits
        # Session liveness checks rescan every (asn, neighbor) pair the
        # install pass already computed: all hits, no new misses.
        bgp.resync_sessions()
        assert bgp.egress_cache.hits > hits_before
        assert bgp.egress_cache.misses == misses


class TestGroupedInstallSwitch:
    def test_default_is_grouped(self):
        assert grouped_install_enabled() is True

    def test_context_manager_scopes_and_restores(self):
        with grouped_install(False):
            assert grouped_install_enabled() is False
            with grouped_install(True):
                assert grouped_install_enabled() is True
            assert grouped_install_enabled() is False
        assert grouped_install_enabled() is True

    def test_set_default_returns_previous(self):
        assert set_grouped_install_default(False) is True
        try:
            assert grouped_install_enabled() is False
        finally:
            assert set_grouped_install_default(True) is False

    def test_protocol_consults_switch_at_construction(self):
        with grouped_install(False):
            orch = Orchestrator(build_two_domain_network())
        assert orch.bgp.grouped_install is False
        assert orch.bgp.batch_updates is False
        # Constructed outside the block: back to the optimized path.
        fresh = Orchestrator(build_two_domain_network())
        assert fresh.bgp.grouped_install is True


def assert_no_empty_ribs(bgp):
    for asn, speaker in bgp.speakers.items():
        for prefix, rib in speaker.adj_rib_in.items():
            assert rib, (f"AS{asn} keeps an empty Adj-RIB-In dict "
                         f"for {prefix}")


class TestAdjRibInPruning:
    def test_withdrawal_prunes_empty_rib_dicts(self, converged_chain):
        bgp = converged_chain.bgp
        pfx = Prefix.host(ipv4("240.0.0.1"))
        bgp.originate(1, pfx, scope=RouteScope.ANYCAST_GLOBAL)
        converged_chain.scheduler.run_until_idle()
        assert any(pfx in s.adj_rib_in for s in bgp.speakers.values())
        bgp.withdraw(1, pfx)
        converged_chain.scheduler.run_until_idle()
        # The last-neighbor delete must remove the per-prefix dict
        # itself, not leave an empty shell behind.
        for speaker in bgp.speakers.values():
            assert pfx not in speaker.adj_rib_in
        assert_no_empty_ribs(bgp)

    def test_session_flush_prunes_empty_rib_dicts(self, converged_two_domain):
        orch = converged_two_domain
        orch.network.link_between("r1b", "r2b").fail()
        orch.bgp.resync_sessions()
        orch.scheduler.run_until_idle()
        assert_no_empty_ribs(orch.bgp)
        # Both sides flushed the peer-learned prefix entirely.
        net = orch.network
        assert net.domains[2].prefix not in orch.bgp.speaker(1).adj_rib_in
        assert net.domains[1].prefix not in orch.bgp.speaker(2).adj_rib_in

    def test_converged_state_has_no_empty_ribs(self, converged_hub):
        assert_no_empty_ribs(converged_hub.bgp)


class TestDirtyTracking:
    def test_install_clears_dirty(self, converged_hub):
        for speaker in converged_hub.bgp.speakers.values():
            assert speaker.dirty == set()

    def test_loc_rib_change_marks_dirty(self, converged_chain):
        bgp = converged_chain.bgp
        pfx = Prefix.host(ipv4("240.0.0.1"))
        bgp.originate(1, pfx, scope=RouteScope.ANYCAST_GLOBAL)
        converged_chain.scheduler.run_until_idle()
        for asn in (1, 2, 3, 4):
            assert pfx in bgp.speaker(asn).dirty
        bgp.install_routes()
        for asn in (1, 2, 3, 4):
            assert bgp.speaker(asn).dirty == set()

    def test_unchanged_decision_stays_clean(self, converged_chain):
        bgp = converged_chain.bgp
        speaker = bgp.speaker(4)
        pfx = converged_chain.network.domains[1].prefix
        assert speaker.decide(pfx) is not None  # same best as before
        assert pfx not in speaker.dirty


class TestMraiBatching:
    def test_same_tick_updates_coalesce_into_one_batch(self, converged_chain):
        bgp = converged_chain.bgp
        assert bgp.batch_updates is True
        p1 = Prefix.host(ipv4("240.0.0.1"))
        p2 = Prefix.host(ipv4("240.0.0.2"))
        bgp.originate(4, p1, scope=RouteScope.ANYCAST_GLOBAL)
        bgp.originate(4, p2, scope=RouteScope.ANYCAST_GLOBAL)
        # AS4's only neighbor is AS3: two same-tick updates, one batch.
        assert len(bgp._pending_batches) == 1
        (batch,) = bgp._pending_batches.values()
        assert [u.prefix for u in batch] == [p1, p2]  # send order kept
        converged_chain.scheduler.run_until_idle()
        assert bgp._pending_batches == {}
        for asn in (1, 2, 3):
            assert bgp.speaker(asn).best_route(p1) is not None
            assert bgp.speaker(asn).best_route(p2) is not None

    def test_batching_reduces_convergence_events(self):
        def run(grouped):
            with grouped_install(grouped):
                orch = Orchestrator(build_hub_network())
                orch.converge()
            return orch

        grouped, seed = run(True), run(False)
        assert (grouped.scheduler.events_processed
                < seed.scheduler.events_processed)
        # Same traffic over the sessions, just fewer delivery events.
        assert grouped.bgp.stats.sent == seed.bgp.stats.sent
        assert grouped.bgp.stats.delivered == seed.bgp.stats.delivered

    def test_perturbation_falls_back_to_per_message(self, converged_chain):
        bgp = converged_chain.bgp
        scheduler = converged_chain.scheduler
        scheduler.set_message_perturbation(loss_prob=0.0)
        try:
            pfx = Prefix.host(ipv4("240.0.0.1"))
            bgp.originate(4, pfx, scope=RouteScope.ANYCAST_GLOBAL)
            # Loss/jitter draws are per message: nothing may batch.
            assert bgp._pending_batches == {}
            scheduler.run_until_idle()
        finally:
            scheduler.clear_message_perturbation()
        assert bgp.speaker(1).best_route(pfx) is not None

    def test_seed_mode_never_batches(self):
        with grouped_install(False):
            orch = Orchestrator(build_two_domain_network())
            orch.converge()
        assert orch.bgp._pending_batches == {}
        assert orch.bgp.batch_updates is False
