"""Grouped/incremental install == seed install: byte-identical FIBs.

The optimized control plane (grouped FIB installation over memoized
egress maps, incremental dirty-set reinstalls, MRAI-batched update
propagation — :mod:`repro.bgp.egress` / :mod:`repro.bgp.protocol`)
must be indistinguishable from the per-prefix seed path it replaced:
identical FIB snapshots, identical experiment metrics, and identical
``repro.report/v1`` critical paths — across the workload matrix, fault
plans with session flaps, and both caching modes.  Mirrors
``tests/perf/test_determinism`` (cached == uncached) and
``tests/perf/test_fastpath`` (fast path on == off).
"""

import pytest

from repro.analyze import build_report
from repro.bgp.egress import grouped_install
from repro.bgp.routes import RouteScope
from repro.core.orchestrator import Orchestrator
from repro.faults import FaultInjector, FaultPlan
from repro.net import Prefix, ipv4
from repro.obs import Observability, Tracer, observing
from repro.perf.bench import WORKLOADS, run_leg, workload_fault_epoch
from repro.perf.cache import caching
from tests.conftest import (build_chain_network, build_hub_network,
                            build_two_domain_network)

BUILDERS = [build_two_domain_network, build_chain_network,
            build_hub_network]
BUILDER_IDS = ["two_domain", "chain", "hub"]
WORKLOAD_IDS = [name for name, _ in WORKLOADS]
CACHE_IDS = ["cached", "uncached"]


def fib_snapshots(network):
    """Canonical dump of every FIB — the byte-identity witness."""
    dump = {}
    for node_id in sorted(network.nodes):
        fib = getattr(network.node(node_id), "fib4", None)
        if fib is not None:
            dump[node_id] = fib.snapshot()
    return dump


def converged(build, grouped, cached=True):
    with grouped_install(grouped), caching(cached):
        orch = Orchestrator(build())
        orch.converge()
    return orch


class TestFreshConvergence:
    @pytest.mark.parametrize("cached", [True, False], ids=CACHE_IDS)
    @pytest.mark.parametrize("build", BUILDERS, ids=BUILDER_IDS)
    def test_identical_fibs(self, build, cached):
        grouped = converged(build, grouped=True, cached=cached)
        seed = converged(build, grouped=False, cached=cached)
        assert fib_snapshots(grouped.network) == fib_snapshots(seed.network)
        # Both legs really ran their own mode.
        assert grouped.bgp.grouped_install is True
        assert seed.bgp.grouped_install is False
        assert seed.bgp.batch_updates is False

    @pytest.mark.parametrize("build", BUILDERS, ids=BUILDER_IDS)
    def test_identical_loc_ribs_and_message_counts(self, build):
        grouped = converged(build, grouped=True)
        seed = converged(build, grouped=False)
        for asn, speaker in grouped.bgp.speakers.items():
            assert speaker.loc_rib == seed.bgp.speakers[asn].loc_rib
            assert speaker.adj_rib_in == seed.bgp.speakers[asn].adj_rib_in
        # Batching coalesces deliveries into fewer scheduler events but
        # never changes how many updates flow over the sessions.
        assert grouped.bgp.stats.sent == seed.bgp.stats.sent
        assert grouped.bgp.stats.delivered == seed.bgp.stats.delivered

    def test_grouped_path_saves_install_lookups(self):
        grouped = converged(build_hub_network, grouped=True)
        seed = converged(build_hub_network, grouped=False)
        assert 0 < grouped.bgp.install_fib_lookups
        assert grouped.bgp.install_fib_lookups < seed.bgp.install_fib_lookups


def _scrub_event_counts(payload):
    """Drop scheduler-event counters from a leg payload.

    MRAI batching coalesces same-tick deliveries into fewer scheduler
    events — ``events_processed`` / ``message_totals.events`` shrinking
    is the optimization itself (the bench records it per cell as
    ``convergence_events``), so the equivalence bar covers everything
    *except* those counts.  Returns ``(scrubbed, counts)`` where
    ``counts`` lists the removed values in traversal order.
    """
    counts = []

    def walk(value):
        if isinstance(value, dict):
            out = {}
            for key, item in value.items():
                if (key in ("events_processed", "events")
                        and isinstance(item, int)):
                    counts.append(item)
                    continue
                out[key] = walk(item)
            return out
        if isinstance(value, list):
            return [walk(item) for item in value]
        return value

    return walk(payload), counts


class TestWorkloadMatrix:
    @pytest.mark.parametrize("name,workload", WORKLOADS, ids=WORKLOAD_IDS)
    def test_leg_metrics_identical_grouped_vs_seed(self, name, workload):
        with grouped_install(True):
            on = run_leg(workload, seed=11, quick=True, cached=True)
        with grouped_install(False):
            off = run_leg(workload, seed=11, quick=True, cached=True)
        on_payload, on_events = _scrub_event_counts(on.payload)
        off_payload, off_events = _scrub_event_counts(off.payload)
        assert on_payload == off_payload
        # Batching may only ever *remove* scheduler events.
        assert len(on_events) == len(off_events)
        assert all(grouped <= seed
                   for grouped, seed in zip(on_events, off_events))


class TestFaultReconvergence:
    @pytest.mark.parametrize("cached", [True, False], ids=CACHE_IDS)
    def test_session_flap_reconverges_to_identical_fibs(self, cached):
        """An inter-domain link flap tears the session down and brings
        it back: both install modes must land on the same FIBs."""
        plan = (FaultPlan()
                .link_down("r1b", "r2b", at=10.0)
                .link_up("r1b", "r2b", at=50.0))

        def run(grouped):
            with grouped_install(grouped), caching(cached):
                orch = Orchestrator(build_two_domain_network())
                orch.converge()
                FaultInjector(orch, plan).play()
            return orch

        grouped, seed = run(True), run(False)
        assert fib_snapshots(grouped.network) == fib_snapshots(seed.network)

    def test_speaker_crash_and_recovery_identical_fibs(self):
        """Crashing every router of an AS flushes its speaker (marking
        the whole Loc-RIB dirty); recovery reannounces.  Both modes
        must rebuild the same forwarding state."""
        plan = (FaultPlan()
                .crash_node("y1", at=10.0)
                .crash_node("y2", at=10.0)
                .recover_node("y1", at=60.0)
                .recover_node("y2", at=60.0))

        def run(grouped):
            with grouped_install(grouped):
                orch = Orchestrator(build_hub_network())
                orch.converge()
                FaultInjector(orch, plan).play()
            return orch

        grouped, seed = run(True), run(False)
        assert fib_snapshots(grouped.network) == fib_snapshots(seed.network)

    def test_lossy_window_falls_back_but_still_matches(self):
        """While a message perturbation is active, batching must fall
        back to per-message scheduling so the loss draws line up with
        the seed path message for message — same seed, same survivors,
        same FIBs."""
        plan = (FaultPlan()
                .message_loss(start=5.0, end=40.0, prob=0.3)
                .link_down("r1b", "r2b", at=10.0)
                .link_up("r1b", "r2b", at=30.0))

        def run(grouped):
            with grouped_install(grouped):
                orch = Orchestrator(build_two_domain_network(), seed=13)
                orch.converge()
                FaultInjector(orch, plan).play()
            return orch

        grouped, seed = run(True), run(False)
        assert grouped.scheduler.messages_lost == seed.scheduler.messages_lost
        assert fib_snapshots(grouped.network) == fib_snapshots(seed.network)


class TestIncrementalReinstall:
    def test_incremental_matches_seed_reference(self):
        """A BGP-only change (no topology version bump) takes the
        incremental dirty-set path; the result must equal a seed-mode
        run of the same history."""
        pfx = Prefix.host(ipv4("240.0.0.9"))

        def run(grouped):
            obs = Observability()
            with grouped_install(grouped), observing(obs):
                orch = Orchestrator(build_chain_network())
                orch.converge()
                orch.bgp.originate(2, pfx, scope=RouteScope.ANYCAST_GLOBAL)
                orch.scheduler.run_until_idle()
                orch.bgp.install_routes()
            return orch, obs

        grouped, grouped_obs = run(True)
        seed, _seed_obs = run(False)
        assert fib_snapshots(grouped.network) == fib_snapshots(seed.network)
        # The second install really took the incremental path...
        counter = grouped_obs.counter("perf.bgp.incremental_installs")
        assert counter.value >= 1
        # ...and reached every router (the new anycast route is live).
        entry = grouped.network.node("z2").fib4.lookup(ipv4("240.0.0.9"))
        assert entry is not None

    def test_withdrawal_is_reinstalled_incrementally(self):
        pfx = Prefix.host(ipv4("240.0.0.9"))

        def run(grouped):
            with grouped_install(grouped):
                orch = Orchestrator(build_chain_network())
                orch.converge()
                bgp = orch.bgp
                bgp.originate(2, pfx, scope=RouteScope.ANYCAST_GLOBAL)
                orch.scheduler.run_until_idle()
                bgp.install_routes()
                bgp.withdraw(2, pfx)
                orch.scheduler.run_until_idle()
                bgp.install_routes()
            return orch

        grouped, seed = run(True), run(False)
        assert fib_snapshots(grouped.network) == fib_snapshots(seed.network)
        assert grouped.network.node("z2").fib4.lookup(ipv4("240.0.0.9")) is None

    def test_quiescent_reinstall_is_free(self):
        with grouped_install(True):
            orch = Orchestrator(build_hub_network())
            orch.converge()
            bgp = orch.bgp
            lookups_before = bgp.install_fib_lookups
            before = fib_snapshots(orch.network)
            bgp.install_routes()  # nothing dirty, same topology version
        assert bgp.install_fib_lookups == lookups_before
        assert fib_snapshots(orch.network) == before


def _traced_fault_report(grouped):
    obs = Observability(tracer=Tracer(context={"seed": 7,
                                               "grouped": grouped}))
    with grouped_install(grouped), caching(True), observing(obs):
        workload_fault_epoch(7, True)
    obs.close()
    return build_report(obs.tracer.events())


@pytest.mark.slow
def test_report_critical_paths_identical_grouped_vs_seed():
    on = _traced_fault_report(True)
    off = _traced_fault_report(False)
    assert len(on["epochs"]) == len(off["epochs"]) == 2
    for epoch_on, epoch_off in zip(on["epochs"], off["epochs"]):
        assert epoch_on["critical_path"] == epoch_off["critical_path"]
        assert epoch_on["transient"] == epoch_off["transient"]
        assert epoch_on["recovered"] == epoch_off["recovered"]
    assert on["forwarding"] == off["forwarding"]
