"""Unit tests for Gao-Rexford policy and the anycast route scopes."""

import pytest

from repro.net.address import Prefix, ipv4
from repro.net.domain import Domain, Relationship
from repro.bgp.policy import BgpPolicy, BilateralAgreements, local_pref_for
from repro.bgp.routes import (LOCAL_PREF_CUSTOMER, LOCAL_PREF_PEER,
                              LOCAL_PREF_PROVIDER, BgpRoute, RouteScope)

PFX = Prefix.parse("10.9.0.0/16")
ACAST = Prefix.host(ipv4("240.0.0.1"))


def domain(asn=1, propagates_anycast=True):
    d = Domain(asn=asn, name=f"as{asn}", prefix=Prefix.parse(f"10.{asn}.0.0/16"),
               propagates_anycast=propagates_anycast)
    d.set_relationship(2, Relationship.CUSTOMER)
    d.set_relationship(3, Relationship.PEER)
    d.set_relationship(4, Relationship.PROVIDER)
    return d


def incoming(from_asn, prefix=PFX, scope=RouteScope.NORMAL):
    return BgpRoute(prefix=prefix, as_path=(from_asn, 9), scope=scope,
                    learned_from=None)


class TestLocalPref:
    def test_mapping(self):
        assert local_pref_for(Relationship.CUSTOMER) == LOCAL_PREF_CUSTOMER
        assert local_pref_for(Relationship.PEER) == LOCAL_PREF_PEER
        assert local_pref_for(Relationship.PROVIDER) == LOCAL_PREF_PROVIDER


class TestImport:
    def test_accept_assigns_pref_by_relationship(self):
        policy = BgpPolicy()
        d = domain()
        imported = policy.accept(d, incoming(2), from_asn=2)
        assert imported is not None
        assert imported.local_pref == LOCAL_PREF_CUSTOMER
        assert imported.learned_from == 2

    def test_reject_as_path_loop(self):
        policy = BgpPolicy()
        d = domain()
        looped = BgpRoute(prefix=PFX, as_path=(2, 1, 9), learned_from=None)
        assert policy.accept(d, looped, from_asn=2) is None

    def test_reject_unknown_neighbor(self):
        policy = BgpPolicy()
        assert policy.accept(domain(), incoming(7), from_asn=7) is None

    def test_anycast_global_needs_policy_change(self):
        policy = BgpPolicy()
        unwilling = domain(propagates_anycast=False)
        route = incoming(2, prefix=ACAST, scope=RouteScope.ANYCAST_GLOBAL)
        assert policy.accept(unwilling, route, from_asn=2) is None
        willing = domain(propagates_anycast=True)
        assert policy.accept(willing, route, from_asn=2) is not None

    def test_anycast_bilateral_needs_agreement(self):
        agreements = BilateralAgreements()
        policy = BgpPolicy(agreements)
        d = domain()
        route = incoming(2, prefix=ACAST, scope=RouteScope.ANYCAST_BILATERAL)
        assert policy.accept(d, route, from_asn=2) is None
        agreements.add(ACAST, 2, 1)
        assert policy.accept(d, route, from_asn=2) is not None


class TestExport:
    def make(self, learned_rel=None, scope=RouteScope.NORMAL):
        """A route as held by AS1: originated, or learned from the
        neighbor bearing *learned_rel*."""
        neighbor = {Relationship.CUSTOMER: 2, Relationship.PEER: 3,
                    Relationship.PROVIDER: 4}.get(learned_rel)
        return BgpRoute(prefix=PFX if scope is RouteScope.NORMAL else ACAST,
                        as_path=(9,), scope=scope, learned_from=neighbor,
                        local_pref=100)

    def test_originated_exports_everywhere(self):
        policy = BgpPolicy()
        d = domain()
        route = self.make()
        for neighbor in (2, 3, 4):
            assert policy.should_export(d, route, neighbor)

    def test_customer_routes_export_everywhere(self):
        policy = BgpPolicy()
        d = domain()
        route = self.make(Relationship.CUSTOMER)
        assert policy.should_export(d, route, 3)
        assert policy.should_export(d, route, 4)

    def test_peer_routes_only_to_customers(self):
        policy = BgpPolicy()
        d = domain()
        route = self.make(Relationship.PEER)
        assert policy.should_export(d, route, 2)
        assert not policy.should_export(d, route, 4)

    def test_provider_routes_only_to_customers(self):
        policy = BgpPolicy()
        d = domain()
        route = self.make(Relationship.PROVIDER)
        assert policy.should_export(d, route, 2)
        assert not policy.should_export(d, route, 3)

    def test_never_reflect_to_sender(self):
        policy = BgpPolicy()
        d = domain()
        route = self.make(Relationship.CUSTOMER)
        assert not policy.should_export(d, route, 2)

    def test_no_export_to_stranger(self):
        policy = BgpPolicy()
        assert not policy.should_export(domain(), self.make(), 99)

    def test_anycast_global_export_gated_by_policy_flag(self):
        policy = BgpPolicy()
        route = self.make(Relationship.CUSTOMER, scope=RouteScope.ANYCAST_GLOBAL)
        assert policy.should_export(domain(), route, 3)
        assert not policy.should_export(domain(propagates_anycast=False), route, 3)

    def test_bilateral_export_only_over_agreement(self):
        agreements = BilateralAgreements()
        policy = BgpPolicy(agreements)
        d = domain()
        originated = BgpRoute(prefix=ACAST, as_path=(1,),
                              scope=RouteScope.ANYCAST_BILATERAL,
                              learned_from=None)
        assert not policy.should_export(d, originated, 3)
        agreements.add(ACAST, 1, 3)
        assert policy.should_export(d, originated, 3)

    def test_bilateral_not_reexported_by_default(self):
        agreements = BilateralAgreements()
        agreements.add(ACAST, 2, 1)
        policy = BgpPolicy(agreements)
        d = domain()
        learned = BgpRoute(prefix=ACAST, as_path=(2,),
                           scope=RouteScope.ANYCAST_BILATERAL, learned_from=2)
        assert not policy.should_export(d, learned, 3)

    def test_bilateral_transitive_mode(self):
        agreements = BilateralAgreements(transitive=True)
        agreements.add(ACAST, 2, 1)
        agreements.add(ACAST, 1, 3)
        policy = BgpPolicy(agreements)
        d = domain()
        learned = BgpRoute(prefix=ACAST, as_path=(2,),
                           scope=RouteScope.ANYCAST_BILATERAL, learned_from=2)
        assert policy.should_export(d, learned, 3)
        assert not policy.should_export(d, learned, 4)


class TestAgreements:
    def test_add_remove(self):
        agreements = BilateralAgreements()
        agreements.add(ACAST, 1, 2)
        assert agreements.allows(ACAST, 1, 2)
        assert not agreements.allows(ACAST, 2, 1)
        agreements.remove(ACAST, 1, 2)
        assert not agreements.allows(ACAST, 1, 2)

    def test_partners_of(self):
        agreements = BilateralAgreements()
        agreements.add(ACAST, 1, 2)
        agreements.add(ACAST, 1, 3)
        agreements.add(ACAST, 4, 5)
        assert agreements.partners_of(ACAST, 1) == {2, 3}

    def test_clear(self):
        agreements = BilateralAgreements()
        agreements.add(ACAST, 1, 2)
        agreements.clear()
        assert not agreements.allows(ACAST, 1, 2)
