"""Integration-level tests for the BGP protocol engine."""

import pytest

from repro.net import (Domain, Network, Outcome, Prefix, Relationship, ipv4,
                       ipv4_packet)
from repro.bgp.routes import RouteScope
from repro.core.orchestrator import Orchestrator
from tests.conftest import build_chain_network, build_hub_network


class TestPropagation:
    def test_every_domain_learns_every_prefix(self, converged_hub):
        bgp = converged_hub.bgp
        for asn in (1, 2, 3, 4):
            assert bgp.speaker(asn).rib_size() == 4  # incl. own prefix

    def test_as_paths_are_loop_free(self, converged_chain):
        bgp = converged_chain.bgp
        for asn, speaker in bgp.speakers.items():
            for prefix, route in speaker.loc_rib.items():
                assert len(set(route.as_path)) == len(route.as_path)

    def test_chain_path_lengths(self, converged_chain):
        bgp = converged_chain.bgp
        net = converged_chain.network
        # AS4 (Z) to AS1 (W): path Z->Y->X->W has 3 AS hops.
        path = bgp.as_path_to(4, net.domains[1].prefix)
        assert path == (3, 2, 1)

    def test_valley_free_paths(self, converged_hub):
        """In the hub topology, customer X must not transit to customer Z
        through another customer: all paths go via the hub provider."""
        bgp = converged_hub.bgp
        net = converged_hub.network
        path = bgp.as_path_to(2, net.domains[4].prefix)
        assert path == (1, 4)

    def test_peers_do_not_provide_transit(self):
        """Two stubs peering with each other but having separate
        providers must not see each other's provider routes leak."""
        net = Network()
        for asn in (1, 2, 3, 4):
            net.add_domain(Domain(asn=asn, name=f"as{asn}",
                                  prefix=Prefix.parse(f"10.{asn}.0.0/16")))
            net.add_router(f"r{asn}", asn, is_border=True)
        net.connect_domains(3, 1, "r3", "r1", Relationship.PROVIDER)
        net.connect_domains(4, 2, "r4", "r2", Relationship.PROVIDER)
        net.connect_domains(3, 4, "r3", "r4", Relationship.PEER)
        orch = Orchestrator(net)
        orch.converge()
        # AS3 peers with AS4, so it reaches AS4's prefix directly...
        assert orch.bgp.as_path_to(3, net.domains[4].prefix) == (4,)
        # ...but AS3 must NOT reach AS2 (4's provider) through the peer
        # link, and there is no other path: no route at all.
        assert orch.bgp.as_path_to(3, net.domains[2].prefix) is None


class TestWithdrawal:
    def test_withdraw_removes_routes_everywhere(self, converged_chain):
        bgp = converged_chain.bgp
        net = converged_chain.network
        pfx = net.domains[1].prefix
        bgp.withdraw(1, pfx)
        converged_chain.scheduler.run_until_idle()
        for asn in (2, 3, 4):
            assert bgp.speaker(asn).best_route(pfx) is None

    def test_anycast_origination_and_withdrawal(self, converged_chain):
        bgp = converged_chain.bgp
        pfx = Prefix.host(ipv4("240.0.0.1"))
        bgp.originate(2, pfx, scope=RouteScope.ANYCAST_GLOBAL)
        converged_chain.scheduler.run_until_idle()
        assert bgp.speaker(4).best_route(pfx) is not None
        bgp.withdraw(2, pfx)
        converged_chain.scheduler.run_until_idle()
        assert bgp.speaker(4).best_route(pfx) is None

    def test_multi_origin_anycast_prefers_closest(self, converged_chain):
        bgp = converged_chain.bgp
        pfx = Prefix.host(ipv4("240.0.0.1"))
        bgp.originate(1, pfx, scope=RouteScope.ANYCAST_GLOBAL)
        bgp.originate(3, pfx, scope=RouteScope.ANYCAST_GLOBAL)
        converged_chain.scheduler.run_until_idle()
        # AS4 (Z) is adjacent to AS3 (Y): one hop beats three.
        route = bgp.speaker(4).best_route(pfx)
        assert route is not None and route.as_path == (3,)


class TestInstallation:
    def test_end_to_end_forwarding(self, converged_chain):
        net = converged_chain.network
        trace = converged_chain.forward(
            ipv4_packet(net.node("c").ipv4, net.node("hx").ipv4), "c")
        assert trace.outcome is Outcome.DELIVERED
        assert trace.domain_path() == [4, 3, 2]

    def test_internal_routers_route_via_border(self, converged_chain):
        net = converged_chain.network
        # z2 is internal; its route to AS1's prefix goes towards z1.
        entry = net.node("z2").fib4.lookup(net.node("w1").ipv4)
        assert entry is not None and entry.next_hop == "z1"

    def test_no_physical_link_no_install(self):
        net = build_hub_network()
        orch = Orchestrator(net)
        orch.converge()
        # Kill the only physical path from Z to the world, reconverge
        # FIB installation: routes via the dead link are not installed.
        net.link_between("z1", "w1").fail()
        orch.bgp.install_routes()
        entry = net.node("z1").fib4.lookup(net.node("x1").ipv4)
        assert entry is None

    def test_route_counts(self, converged_hub):
        counts = converged_hub.bgp.route_counts()
        assert set(counts) == {1, 2, 3, 4}
        assert all(v == 4 for v in counts.values())

    def test_add_speaker_rejects_duplicates(self, converged_hub):
        from repro.net.errors import RoutingError

        with pytest.raises(RoutingError):
            converged_hub.bgp.add_speaker(converged_hub.network.domains[1])


class TestHotPotato:
    def test_router_picks_nearest_egress(self):
        """A domain with two borders to the same provider: each internal
        router exits via its closer border."""
        net = Network()
        net.add_domain(Domain(asn=1, name="big", prefix=Prefix.parse("10.1.0.0/16")))
        net.add_domain(Domain(asn=2, name="up", prefix=Prefix.parse("10.2.0.0/16")))
        for rid, border in [("a", True), ("b", False), ("c", True)]:
            net.add_router(rid, 1, is_border=border)
        net.add_link("a", "b", cost=1)
        net.add_link("b", "c", cost=1)
        net.add_router("p1", 2, is_border=True)
        net.add_router("p2", 2, is_border=True)
        net.add_link("p1", "p2", cost=1)
        net.connect_domains(1, 2, "a", "p1", Relationship.PROVIDER)
        net.add_link("c", "p2")  # second physical link, same AS pair
        orch = Orchestrator(net)
        orch.converge()
        target = net.domains[2].prefix
        entry_a = net.node("a").fib4.lookup(ipv4("10.2.0.9"))
        entry_c = net.node("c").fib4.lookup(ipv4("10.2.0.9"))
        assert entry_a is not None and entry_a.next_hop == "p1"
        assert entry_c is not None and entry_c.next_hop == "p2"
