"""Unit tests for BGP route objects and selection keys."""

import pytest

from repro.net.address import Prefix
from repro.bgp.routes import (LOCAL_PREF_CUSTOMER, LOCAL_PREF_PEER,
                              LOCAL_PREF_PROVIDER, BgpRoute, BgpUpdate,
                              RouteScope)

PFX = Prefix.parse("10.5.0.0/16")


def route(path, pref=100, learned_from=None, scope=RouteScope.NORMAL):
    return BgpRoute(prefix=PFX, as_path=tuple(path), local_pref=pref,
                    scope=scope, learned_from=learned_from)


class TestBgpRoute:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            BgpRoute(prefix=PFX, as_path=())

    def test_origin_and_length(self):
        r = route([3, 2, 5])
        assert r.origin_asn == 5
        assert r.path_length == 3

    def test_originated_flag(self):
        assert route([1]).originated
        assert not route([1], learned_from=2).originated

    def test_prepended(self):
        r = route([2, 5]).prepended(9)
        assert r.as_path == (9, 2, 5)

    def test_contains_asn(self):
        assert route([2, 5]).contains_asn(5)
        assert not route([2, 5]).contains_asn(7)

    def test_scope_anycast_flags(self):
        assert RouteScope.ANYCAST_GLOBAL.is_anycast
        assert RouteScope.ANYCAST_BILATERAL.is_anycast
        assert not RouteScope.NORMAL.is_anycast


class TestSelection:
    def test_higher_local_pref_wins(self):
        customer = route([9, 5], pref=LOCAL_PREF_CUSTOMER, learned_from=9)
        provider = route([3, 5], pref=LOCAL_PREF_PROVIDER, learned_from=3)
        assert min([provider, customer],
                   key=BgpRoute.selection_key) is customer

    def test_shorter_path_breaks_pref_tie(self):
        short = route([3, 5], pref=LOCAL_PREF_PEER, learned_from=3)
        long = route([4, 6, 5], pref=LOCAL_PREF_PEER, learned_from=4)
        assert min([long, short], key=BgpRoute.selection_key) is short

    def test_lower_origin_breaks_length_tie(self):
        a = route([3, 5], pref=LOCAL_PREF_PEER, learned_from=3)
        b = route([4, 2], pref=LOCAL_PREF_PEER, learned_from=4)
        assert min([a, b], key=BgpRoute.selection_key) is b

    def test_lower_neighbor_breaks_full_tie(self):
        a = route([3, 5], pref=LOCAL_PREF_PEER, learned_from=3)
        b = route([4, 5], pref=LOCAL_PREF_PEER, learned_from=4)
        assert min([a, b], key=BgpRoute.selection_key) is a

    def test_selection_is_deterministic(self):
        routes = [route([3, 5], learned_from=3), route([4, 5], learned_from=4)]
        assert (min(routes, key=BgpRoute.selection_key)
                is min(reversed(routes), key=BgpRoute.selection_key))


class TestBgpUpdate:
    def test_withdrawal_flag(self):
        assert BgpUpdate(sender_asn=1, prefix=PFX).is_withdrawal
        assert not BgpUpdate(sender_asn=1, prefix=PFX,
                             route=route([1])).is_withdrawal
