"""Shared fixtures: small hand-built internetworks used across the suite."""

from __future__ import annotations

import os

import pytest

from repro.net import Domain, Network, Prefix, Relationship
from repro.core.orchestrator import Orchestrator

try:  # hypothesis is a dev dependency; the suite must run without it
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile("ci", derandomize=True, deadline=None)
    _hyp_settings.register_profile("dev", deadline=None)
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - exercised only without hypothesis
    pass


def build_two_domain_network() -> Network:
    """Two peering domains, two routers and one host each.

        h1 - r1a - r1b === r2b - r2a - h2
              (AS1)         (AS2)
    """
    net = Network()
    net.add_domain(Domain(asn=1, name="left", prefix=Prefix.parse("10.1.0.0/16")))
    net.add_domain(Domain(asn=2, name="right", prefix=Prefix.parse("10.2.0.0/16")))
    for asn in (1, 2):
        net.add_router(f"r{asn}a", asn)
        net.add_router(f"r{asn}b", asn, is_border=True)
        net.add_link(f"r{asn}a", f"r{asn}b")
        net.add_host(f"h{asn}", asn, f"r{asn}a")
    net.connect_domains(1, 2, "r1b", "r2b", Relationship.PEER)
    return net


def build_chain_network() -> Network:
    """Provider chain Z -> Y -> X -> W with a client in Z (Figure 1 shape)."""
    net = Network()
    for asn, name in enumerate(["W", "X", "Y", "Z"], start=1):
        net.add_domain(Domain(asn=asn, name=name,
                              prefix=Prefix.parse(f"10.{asn}.0.0/16")))
        net.add_router(f"{name.lower()}1", asn, is_border=True)
        net.add_router(f"{name.lower()}2", asn)
        net.add_link(f"{name.lower()}1", f"{name.lower()}2")
    net.connect_domains(4, 3, "z1", "y1", Relationship.PROVIDER)
    net.connect_domains(3, 2, "y1", "x1", Relationship.PROVIDER)
    net.connect_domains(2, 1, "x1", "w1", Relationship.PROVIDER)
    net.add_host("c", 4, "z2")
    net.add_host("hx", 2, "x2")
    return net


def build_hub_network() -> Network:
    """Hub provider W (AS1) with customers X, Y, Z; hosts in X and Z."""
    net = Network()
    for asn, name in enumerate(["W", "X", "Y", "Z"], start=1):
        net.add_domain(Domain(asn=asn, name=name,
                              prefix=Prefix.parse(f"10.{asn}.0.0/16"),
                              tier=1 if name == "W" else 2))
        net.add_router(f"{name.lower()}1", asn, is_border=True)
        net.add_router(f"{name.lower()}2", asn)
        net.add_link(f"{name.lower()}1", f"{name.lower()}2")
    for asn, name in [(2, "x"), (3, "y"), (4, "z")]:
        net.connect_domains(asn, 1, f"{name}1", "w1", Relationship.PROVIDER)
    net.add_host("hx", 2, "x2")
    net.add_host("hz", 4, "z2")
    return net


@pytest.fixture
def two_domain_network() -> Network:
    return build_two_domain_network()


@pytest.fixture
def chain_network() -> Network:
    return build_chain_network()


@pytest.fixture
def hub_network() -> Network:
    return build_hub_network()


@pytest.fixture
def converged_two_domain() -> Orchestrator:
    orch = Orchestrator(build_two_domain_network())
    orch.converge()
    return orch


@pytest.fixture
def converged_chain() -> Orchestrator:
    orch = Orchestrator(build_chain_network())
    orch.converge()
    return orch


@pytest.fixture
def converged_hub() -> Orchestrator:
    orch = Orchestrator(build_hub_network())
    orch.converge()
    return orch
