"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTopology:
    def test_describe(self, capsys):
        assert main(["topology", "--seed", "3", "--tier1", "2", "--tier2",
                     "3", "--stubs", "4"]) == 0
        out = capsys.readouterr().out
        assert "domains: 9" in out
        assert "AS1 tier1" in out

    def test_save_and_load(self, tmp_path, capsys):
        path = tmp_path / "topo.json"
        assert main(["topology", "--seed", "3", "--save", str(path)]) == 0
        assert json.loads(path.read_text())["format"] == 1
        assert main(["topology", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "domains: 21" in out


class TestTrace:
    def test_trace_delivers(self, capsys):
        code = main(["trace", "--seed", "3", "--tier1", "2", "--tier2", "3",
                     "--stubs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outcome=delivered" in out
        assert "via anycast" in out

    def test_explicit_hosts_and_adopters(self, capsys):
        code = main(["trace", "--seed", "3", "--tier1", "2", "--tier2", "3",
                     "--stubs", "4", "--deploy", "1", "2",
                     "--scheme", "global"])
        assert code == 0


class TestReachability:
    def test_universal_access(self, capsys):
        code = main(["reachability", "--seed", "3", "--tier1", "2",
                     "--tier2", "3", "--stubs", "4", "--sample", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered: 100.0%" in out

    def test_failure_exit_code(self, capsys):
        # Deploy nothing deployable: global scheme with an adopter that
        # cannot serve everyone when propagation is... simplest: the
        # reachability command returns nonzero only when delivery < 1,
        # which a normal run never hits; assert the 0 path instead and
        # the exit contract via the trace command on an unknown host.
        with pytest.raises(Exception):
            main(["trace", "--seed", "3", "--src", "ghost"])


class TestFaults:
    def test_crash_and_failover_json(self, capsys):
        code = main(["faults", "--sample", "10"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["victim"] is not None
        assert data["member_after_recovery"] == data["victim"]
        assert data["faults_applied"] and len(data["epochs"]) == 2
        for epoch in data["epochs"]:
            assert epoch["recovered"]["delivery_ratio"] == 1.0


class TestAdoption:
    def test_table(self, capsys):
        assert main(["adoption", "--seeds", "2", "--rounds", "40"]) == 0
        out = capsys.readouterr().out
        assert "UA share" in out
        assert out.strip().count("\n") >= 2
