"""Tests for the coupled incentives-plus-mechanisms loop."""

import pytest

from repro.core.closed_loop import CoupledEvolution
from repro.core.evolution import EvolvableInternet
from repro.core.incentives import AdoptionModel
from repro.net.errors import DeploymentError
from repro.topogen import InternetSpec


def make_coupled(universal_access=True, seed=2, n_isps=12):
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=3, n_stub=5, hosts_per_stub=1,
                     seed=seed))
    model = AdoptionModel(n_isps=n_isps, universal_access=universal_access,
                          seed=seed, seeding_prob=0.05)
    return CoupledEvolution(internet, model, sample_pairs=12, seed=seed)


class TestBinding:
    def test_every_agent_bound_to_a_domain(self):
        coupled = make_coupled()
        asns = set(coupled.internet.network.domains)
        assert set(coupled._asn_of_agent.values()) <= asns
        assert len(coupled._asn_of_agent) == len(coupled.model.isps)

    def test_first_mover_becomes_default_isp(self):
        coupled = make_coupled()
        result = coupled.run(rounds=20)
        first_round = result.first_deployment_round()
        assert first_round is not None
        first_asns = next(r.deployed_asns for r in result.rounds
                          if r.round_index == first_round)
        assert coupled.deployment.scheme.default_asn in first_asns

    def test_measure_every_validated(self):
        internet = EvolvableInternet.generate(
            InternetSpec(n_tier1=1, n_tier2=1, n_stub=2, hosts_per_stub=1,
                         seed=0))
        with pytest.raises(DeploymentError):
            CoupledEvolution(internet, AdoptionModel(n_isps=3),
                             measure_every=0)


class TestLoop:
    def test_rounds_recorded(self):
        coupled = make_coupled()
        result = coupled.run(rounds=20)
        assert len(result.rounds) == 20
        assert result.rounds[0].round_index == 1

    def test_universal_access_holds_mechanically(self):
        """The premise the incentive argument assumes is *measured* to
        hold at every round with any deployment."""
        coupled = make_coupled()
        result = coupled.run(rounds=25)
        assert result.first_deployment_round() is not None
        assert result.delivery_always_total_once_deployed()

    def test_deployment_grows_with_model(self):
        coupled = make_coupled()
        result = coupled.run(rounds=30)
        first = result.first_deployment_round()
        assert first is not None
        early = next(r for r in result.rounds if r.round_index == first)
        late = result.final()
        assert len(late.deployed_asns) >= len(early.deployed_asns)
        assert late.deployed_share >= early.deployed_share

    def test_walled_garden_deploys_less(self):
        ua = make_coupled(universal_access=True).run(rounds=30)
        wg = make_coupled(universal_access=False).run(rounds=30)
        assert (len(ua.final().deployed_asns)
                >= len(wg.final().deployed_asns))

    def test_final_requires_rounds(self):
        from repro.core.closed_loop import CoupledResult

        with pytest.raises(DeploymentError):
            CoupledResult().final()
