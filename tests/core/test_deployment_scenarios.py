"""Tests for the deployment scenario engine."""

import pytest

from repro.anycast import DefaultRootedAnycast
from repro.core.deployment import (AdoptionStep, DeploymentSchedule,
                                   ScenarioRunner)
from repro.net.errors import DeploymentError
from repro.vnbone import VnDeployment


@pytest.fixture
def deployment(converged_hub):
    scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
    return VnDeployment(converged_hub, scheme, version=8)


class TestSchedules:
    def test_random_order_covers_all_domains(self, hub_network):
        schedule = DeploymentSchedule.random_order(hub_network, seed=1)
        assert sorted(schedule.asns()) == [1, 2, 3, 4]

    def test_random_order_seeded(self, hub_network):
        a = DeploymentSchedule.random_order(hub_network, seed=1).asns()
        b = DeploymentSchedule.random_order(hub_network, seed=1).asns()
        assert a == b

    def test_core_first_orders_by_tier(self, hub_network):
        schedule = DeploymentSchedule.core_first(hub_network)
        assert schedule.asns()[0] == 1  # the tier-1 hub W leads

    def test_edge_first_reverses(self, hub_network):
        schedule = DeploymentSchedule.edge_first(hub_network)
        assert schedule.asns()[0] != 1

    def test_limit(self, hub_network):
        schedule = DeploymentSchedule.random_order(hub_network, seed=0, limit=2)
        assert len(schedule) == 2

    def test_explicit(self):
        schedule = DeploymentSchedule.explicit([3, 1], fraction=0.5)
        assert schedule.asns() == [3, 1]
        assert all(step.fraction == 0.5 for step in schedule)

    def test_bad_fraction_rejected(self):
        with pytest.raises(DeploymentError):
            AdoptionStep(asn=1, fraction=0.0)


class TestRunner:
    def test_run_measures_each_step(self, deployment):
        schedule = DeploymentSchedule.explicit([2, 1])
        runner = ScenarioRunner(deployment)

        def probe(step, dep):
            return {"members": len(dep.members())}

        result = runner.run(schedule, probe)
        assert len(result.rows) == 3  # baseline + 2 steps
        assert result.column("members") == [0, 2, 4]
        assert result.rows[0]["adopted_asn"] is None
        assert result.rows[1]["adopted_asn"] == 2

    def test_run_without_baseline(self, deployment):
        schedule = DeploymentSchedule.explicit([2])
        result = ScenarioRunner(deployment).run(
            schedule, lambda s, d: {}, measure_baseline=False)
        assert len(result.rows) == 1

    def test_last_row(self, deployment):
        schedule = DeploymentSchedule.explicit([2])
        result = ScenarioRunner(deployment).run(schedule,
                                                lambda s, d: {"x": s})
        assert result.last()["x"] == 1

    def test_empty_result_last_raises(self):
        from repro.core.deployment import ScenarioResult

        with pytest.raises(DeploymentError):
            ScenarioResult().last()

    def test_churn_rolls_domains_back(self, deployment):
        schedule = DeploymentSchedule.explicit([2, 1, 3, 4])
        runner = ScenarioRunner(deployment)
        result = runner.run_with_churn(schedule,
                                       lambda s, d: {"asns": sorted(d.adopting_asns())},
                                       churn_every=2, seed=0)
        # After 4 steps with churn every 2, fewer than 4 domains remain.
        assert len(result.last()["asns"]) < 4

    def test_churn_validates_interval(self, deployment):
        with pytest.raises(DeploymentError):
            ScenarioRunner(deployment).run_with_churn(
                DeploymentSchedule.explicit([2]), lambda s, d: {}, churn_every=0)
