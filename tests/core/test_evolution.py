"""Tests for the EvolvableInternet facade."""

import pytest

from repro.core.evolution import EvolvableInternet
from repro.net.errors import DeploymentError
from repro.topogen import InternetSpec
from repro.vnbone import EgressPolicy


@pytest.fixture(scope="module")
def internet():
    return EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=3, n_stub=5, hosts_per_stub=1, seed=11))


class TestConstruction:
    def test_generate_converges(self, internet):
        report = internet.ipv4_reachability(sample=20)
        assert report.delivery_ratio == 1.0

    def test_tier_queries(self, internet):
        assert len(internet.tier1_asns()) == 2
        assert len(internet.stub_asns()) == 5
        assert internet.hosts()

    def test_from_custom_network(self, hub_network):
        internet = EvolvableInternet(hub_network)
        assert internet.ipv4_reachability().delivery_ratio == 1.0


class TestDeployments:
    def test_default_scheme_picks_tier1(self, internet):
        deployment = internet.new_deployment(version=8)
        assert deployment.scheme.default_asn in internet.tier1_asns()

    def test_duplicate_version_rejected(self, internet):
        with pytest.raises(DeploymentError):
            internet.new_deployment(version=8)

    def test_unknown_scheme_rejected(self, internet):
        with pytest.raises(DeploymentError):
            internet.new_deployment(version=30, scheme="pigeon")

    def test_gia_needs_home(self, internet):
        with pytest.raises(DeploymentError):
            internet.new_deployment(version=31, scheme="gia")

    def test_deployment_lookup(self, internet):
        assert internet.deployment(8) is internet.deployments[8]
        with pytest.raises(DeploymentError):
            internet.deployment(99)

    def test_global_scheme(self, internet):
        deployment = internet.new_deployment(version=9, scheme="global")
        deployment.deploy(internet.tier1_asns()[0])
        deployment.rebuild()
        report = internet.reachability(9, sample=10)
        assert report.delivery_ratio == 1.0

    def test_two_versions_coexist(self, internet):
        ipv8 = internet.deployment(8)
        # Option 2 roots the anycast address in the default ISP — "the
        # first ISP to initiate deployment" — so that is who deploys.
        ipv8.deploy(ipv8.scheme.default_asn)
        ipv8.rebuild()
        assert internet.reachability(8, sample=10).delivery_ratio == 1.0
        assert internet.reachability(9, sample=10).delivery_ratio == 1.0


class TestMeasurement:
    def test_host_pairs_sampling(self, internet):
        pairs = internet.host_pairs(sample=7, seed=0)
        assert len(pairs) == 7
        assert internet.host_pairs(sample=7, seed=0) == pairs

    def test_reachability_universal_access(self, internet):
        report = internet.reachability(8, sample=15)
        assert report.delivery_ratio == 1.0
        assert report.mean_stretch >= 1.0

    def test_describe(self, internet):
        info = internet.describe()
        assert info["domains"] == 10
        assert 8 in info["deployments"]
