"""Tests for the experiment registry (fast paths only; heavy experiments
are exercised by the benchmark suite)."""

import pytest

from repro.net.errors import ReproError
from repro.experiments import (ExperimentResult, available, describe, run,
                               run_many)
from repro.experiments.base import register

ALL_IDS = ["E10", "E11", "E12a", "E12b", "E13a", "E13b", "E14", "E15",
           "E16", "E17", "E5", "E6", "E7", "E8", "E9a", "E9b", "F1", "F2",
           "F3", "F4", "anycast_failover", "bench_converge",
           "bench_fault_epoch", "bench_multicast_fanout",
           "bench_reachability_sweep", "rtt_catchment"]


class TestRegistry:
    def test_all_experiments_registered(self):
        # Other test modules may register throwaway workloads (tagged
        # "test") in this process; the built-in suite must match exactly.
        from repro.experiments import all_specs

        ids = [spec.workload_id for spec in all_specs()
               if "test" not in spec.tags]
        assert ids == ALL_IDS
        assert set(ALL_IDS) <= set(available())

    def test_describe(self):
        assert "Figure 1" in describe("F1")

    def test_unknown_id(self):
        with pytest.raises(ReproError):
            run("F99")
        with pytest.raises(ReproError):
            describe("F99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError):
            register("F1", "duplicate")(lambda seed=0, params=None: None)


class TestResults:
    @pytest.mark.parametrize("experiment_id", ["F1", "F2", "F3", "F4"])
    def test_figures_run_and_format(self, experiment_id):
        result = run(experiment_id)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        table = result.table()
        assert result.header in table
        assert all(row in table for row in result.rows)
        assert result.footer in table

    def test_run_many(self):
        outcomes = run_many(["F1", "F2"])
        assert [o.experiment_id for o in outcomes] == ["F1", "F2"]
        assert all(o.ok for o in outcomes)
        assert [o.result.experiment_id for o in outcomes] == ["F1", "F2"]

    def test_run_many_isolates_unknown_ids(self):
        outcomes = run_many(["F1", "F99"])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "unknown experiment" in outcomes[1].error

    def test_e8_runs(self):
        result = run("E8")
        assert len(result.data) == 10
        assert result.rows


class TestCliIntegration:
    def test_experiment_list(self, capsys):
        from repro.cli import main

        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ALL_IDS:
            assert experiment_id in out

    def test_experiment_run(self, capsys):
        from repro.cli import main

        assert main(["experiment", "F1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "C redirected to" in out
