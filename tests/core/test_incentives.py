"""Tests for the adoption-dynamics model (the Section 2.1 argument)."""

import pytest

from repro.core.incentives import (AdoptionModel, AdoptionTrajectory,
                                   compare_access_models)


class TestModelBasics:
    def test_needs_isps(self):
        with pytest.raises(ValueError):
            AdoptionModel(n_isps=0)

    def test_market_shares_sum_to_one(self):
        model = AdoptionModel(n_isps=10, seed=1)
        assert sum(isp.market_share for isp in model.isps) == pytest.approx(1.0)

    def test_deterministic_for_seed(self):
        a = AdoptionModel(n_isps=20, seed=3).run(40)
        b = AdoptionModel(n_isps=20, seed=3).run(40)
        assert a.deployed_share == b.deployed_share
        assert a.demand == b.demand

    def test_trajectory_lengths(self):
        trajectory = AdoptionModel(n_isps=5, seed=0).run(25)
        assert len(trajectory.demand) == 25
        assert len(trajectory.deployed_share) == 25
        assert len(trajectory.deployed_count) == 25

    def test_demand_bounded(self):
        trajectory = AdoptionModel(n_isps=10, seed=2).run(80)
        assert all(0.0 <= d <= 1.0 for d in trajectory.demand)

    def test_share_monotone_nondecreasing(self):
        trajectory = AdoptionModel(n_isps=15, seed=4).run(60)
        shares = trajectory.deployed_share
        assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))


class TestVirtuousCycle:
    def test_universal_access_reaches_saturation(self):
        trajectory = AdoptionModel(n_isps=30, universal_access=True,
                                   seed=0).run(80)
        assert trajectory.final_share() > 0.9
        assert trajectory.final_demand() > 0.9

    def test_walled_garden_stalls(self):
        trajectory = AdoptionModel(n_isps=30, universal_access=False,
                                   seed=0).run(80)
        assert trajectory.final_share() < 0.5

    def test_ua_beats_walled_garden_across_seeds(self):
        for seed in range(5):
            result = compare_access_models(n_isps=30, rounds=80, seed=seed)
            ua = result["universal_access"].final_share()
            wg = result["walled_garden"].final_share()
            assert ua > wg, (seed, ua, wg)

    def test_rounds_to_share(self):
        trajectory = AdoptionModel(n_isps=30, universal_access=True,
                                   seed=0).run(80)
        halfway = trajectory.rounds_to_share(0.5)
        assert halfway is not None
        assert trajectory.rounds_to_share(2.0) is None

    def test_no_seeding_no_ua_frozen(self):
        model = AdoptionModel(n_isps=20, universal_access=False,
                              seeding_prob=0.0, seed=0)
        trajectory = model.run(60)
        assert trajectory.final_share() == 0.0
        assert trajectory.final_demand() == 0.0

    def test_empty_trajectory_defaults(self):
        trajectory = AdoptionTrajectory()
        assert trajectory.final_share() == 0.0
        assert trajectory.final_demand() == 0.0
