"""Unit tests for the metrics module."""

import pytest

from repro.anycast import DefaultRootedAnycast
from repro.core.metrics import (ReachabilityReport, last_vn_domain,
                                measure_reachability, outcome_histogram,
                                path_stretch, routing_state_table, summarize,
                                trace_path_cost, traffic_share, vn_coverage,
                                vn_tail_length)
from repro.net import ipv4_packet
from repro.vnbone import VnDeployment


@pytest.fixture
def deployment(converged_hub):
    scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
    dep = VnDeployment(converged_hub, scheme, version=8)
    dep.deploy(2)
    dep.rebuild()
    return dep


class TestTraceMetrics:
    def test_path_cost_matches_hops(self, converged_hub):
        net = converged_hub.network
        trace = converged_hub.forward(
            ipv4_packet(net.node("hx").ipv4, net.node("hz").ipv4), "hx")
        assert trace_path_cost(net, trace) == pytest.approx(
            float(trace.physical_hops))  # unit link costs

    def test_direct_ipv4_stretch_is_one(self, converged_hub):
        net = converged_hub.network
        trace = converged_hub.forward(
            ipv4_packet(net.node("hx").ipv4, net.node("hz").ipv4), "hx")
        assert path_stretch(net, trace, "hx", "hz") == pytest.approx(1.0)

    def test_vn_stretch_at_least_one(self, deployment, converged_hub):
        trace = deployment.send("hz", "hx")
        stretch = path_stretch(converged_hub.network, trace, "hz", "hx")
        assert stretch is not None and stretch >= 1.0

    def test_stretch_none_for_failures(self, converged_hub, deployment):
        deployment.undeploy(2)
        deployment.rebuild()
        trace = deployment.send("hz", "hx")
        assert not trace.delivered
        assert path_stretch(converged_hub.network, trace, "hz", "hx") is None

    def test_tail_and_coverage(self, deployment, converged_hub):
        trace = deployment.send("hx", "hz")
        tail = vn_tail_length(converged_hub.network, trace)
        assert tail is not None and tail >= 1
        coverage = vn_coverage(trace)
        assert coverage is not None and 0.0 <= coverage <= 1.0

    def test_last_vn_domain(self, deployment, converged_hub):
        trace = deployment.send("hz", "hx")
        assert last_vn_domain(converged_hub.network, trace) == 2

    def test_tail_none_without_egress(self, converged_hub):
        net = converged_hub.network
        trace = converged_hub.forward(
            ipv4_packet(net.node("hx").ipv4, net.node("hz").ipv4), "hx")
        assert vn_tail_length(net, trace) is None


class TestReachability:
    def test_report_counts(self, deployment, converged_hub):
        pairs = [("hx", "hz"), ("hz", "hx")]
        report = measure_reachability(converged_hub.network, deployment.send,
                                      pairs)
        assert report.attempted == 2
        assert report.delivered == 2
        assert report.delivery_ratio == 1.0
        assert report.mean_stretch is not None
        assert report.median_stretch is not None
        assert report.max_stretch >= report.median_stretch

    def test_failures_recorded(self, converged_hub, deployment):
        deployment.undeploy(2)
        deployment.rebuild()
        report = measure_reachability(converged_hub.network, deployment.send,
                                      [("hx", "hz")])
        assert report.delivered == 0
        assert sum(report.failures.values()) == 1
        assert report.mean_stretch is None

    def test_empty_report(self):
        report = ReachabilityReport()
        assert report.delivery_ratio == 0.0


class TestAggregates:
    def test_routing_state_table(self):
        table = routing_state_table({1: 4, 2: 6})
        assert table == {"total": 10.0, "mean": 5.0, "max": 6.0}
        assert routing_state_table({}) == {"total": 0.0, "mean": 0.0, "max": 0.0}

    def test_traffic_share(self, deployment, converged_hub):
        traces = [deployment.send("hz", "hx"), deployment.send("hx", "hz")]
        share = traffic_share(converged_hub.network, traces, 2)
        assert share == 1.0  # all ingresses are in the only adopting AS
        assert traffic_share(converged_hub.network, traces, 3) == 0.0
        assert traffic_share(converged_hub.network, [], 2) == 0.0

    def test_outcome_histogram(self, deployment):
        traces = [deployment.send("hz", "hx")]
        histogram = outcome_histogram(traces)
        assert histogram == {"delivered": 1}

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["min"] == 1.0
        assert stats["mean"] == 2.0
        assert stats["median"] == 2.0
        assert stats["max"] == 3.0
        assert stats["n"] == 3.0
        assert summarize([])["n"] == 0.0
