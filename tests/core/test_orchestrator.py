"""Tests for the routing orchestrator."""

import pytest

from repro.core.orchestrator import Orchestrator
from repro.net import ipv4_packet
from repro.net.errors import RoutingError
from repro.routing import DistanceVectorRouting, LinkStateRouting
from tests.conftest import build_hub_network


class TestConstruction:
    def test_igp_per_domain(self):
        orch = Orchestrator(build_hub_network())
        assert set(orch.igps) == {1, 2, 3, 4}
        assert all(isinstance(igp, LinkStateRouting)
                   for igp in orch.igps.values())

    def test_igp_overrides(self):
        orch = Orchestrator(build_hub_network(),
                            igp_overrides={3: "distancevector"})
        assert isinstance(orch.igps[3], DistanceVectorRouting)
        assert isinstance(orch.igps[1], LinkStateRouting)

    def test_unknown_igp_kind(self):
        with pytest.raises(RoutingError):
            Orchestrator(build_hub_network(), igp_kind="ospfv9")
        with pytest.raises(RoutingError):
            Orchestrator(build_hub_network(), igp_overrides={1: "ospfv9"})

    def test_igp_lookup(self):
        orch = Orchestrator(build_hub_network())
        assert orch.igp(1) is orch.igps[1]
        with pytest.raises(RoutingError):
            orch.igp(42)


class TestConvergence:
    def test_forward_before_converge_rejected(self):
        orch = Orchestrator(build_hub_network())
        net = orch.network
        packet = ipv4_packet(net.node("hx").ipv4, net.node("hz").ipv4)
        with pytest.raises(RoutingError):
            orch.forward(packet, "hx")

    def test_converge_enables_forwarding(self):
        orch = Orchestrator(build_hub_network())
        orch.converge()
        net = orch.network
        trace = orch.forward(
            ipv4_packet(net.node("hx").ipv4, net.node("hz").ipv4), "hx")
        assert trace.delivered

    def test_reconverge_before_converge_converges(self):
        orch = Orchestrator(build_hub_network())
        orch.reconverge()
        net = orch.network
        assert orch.forward(
            ipv4_packet(net.node("hx").ipv4, net.node("hz").ipv4),
            "hx").delivered

    def test_reconverge_after_link_failure(self):
        net = build_hub_network()
        # Give AS1 a redundant internal path, then fail the primary.
        net.add_router("w3", 1)
        net.add_link("w1", "w3", cost=5)
        net.add_link("w3", "w2", cost=5)
        orch = Orchestrator(net)
        orch.converge()
        net.link_between("w1", "w2").fail()
        orch.reconverge()
        trace = orch.forward(
            ipv4_packet(net.node("w2").ipv4, net.node("hz").ipv4), "w2")
        assert trace.delivered
        assert "w3" in trace.node_path()

    def test_message_totals(self):
        orch = Orchestrator(build_hub_network())
        orch.converge()
        totals = orch.message_totals()
        assert totals["igp_messages"] > 0
        assert totals["bgp_messages"] > 0
        assert totals["events"] > 0

    def test_deterministic_event_counts(self):
        a = Orchestrator(build_hub_network(), seed=1)
        b = Orchestrator(build_hub_network(), seed=1)
        assert a.converge() == b.converge()
