"""The paper's anycast failover claim, tested end to end.

Section 3.2: because anycast is implemented *in* the routing system,
member failure needs no dedicated failover machinery — "if the nearest
IPvN router fails, the routing protocols will automatically redirect
packets to the next closest IPvN router."  These tests kill the
resolved nearest member with the fault injector, let the control plane
reconverge, and assert that delivery shifted to the next-nearest *live*
member — over several topologies and under both IGP families.
"""

import pytest

from repro.anycast.global_routes import GlobalAnycast
from repro.core.evolution import EvolvableInternet
from repro.core.metrics import ReachabilityReport
from repro.core.orchestrator import Orchestrator
from repro.faults import FaultInjector, FaultPlan
from repro.topogen import InternetSpec

from tests.topogen.fixtures import FAILOVER_CASES

IGP_KINDS = ("linkstate", "distancevector")


def converged_scheme(case, igp_kind):
    net = case.build()
    orch = Orchestrator(net, igp_kind=igp_kind)
    scheme = GlobalAnycast(orch, "vn")
    for member in case.members:
        scheme.add_member(member)
    orch.converge()
    scheme.post_converge_install()
    return net, orch, scheme


@pytest.mark.parametrize("igp_kind", IGP_KINDS)
@pytest.mark.parametrize("case", FAILOVER_CASES, ids=lambda c: c.name)
class TestFailoverInvariant:
    def test_nearest_member_resolves_first(self, case, igp_kind):
        _, _, scheme = converged_scheme(case, igp_kind)
        assert scheme.resolve(case.probe) == case.victim
        oracle = scheme.optimal_member_cost(case.probe)
        assert oracle is not None and oracle[0] == case.victim

    def test_crash_shifts_delivery_to_next_nearest(self, case, igp_kind):
        net, orch, scheme = converged_scheme(case, igp_kind)

        def workload():
            report = ReachabilityReport()
            trace = scheme.probe(case.probe)
            report.attempted = 1
            if trace.delivered:
                report.delivered = 1
            else:
                report.failures[trace.outcome.value] = 1
            return report

        plan = FaultPlan().crash_node(case.victim, at=10.0)
        reports = FaultInjector(orch, plan).play(workload)
        scheme.post_converge_install()
        (report,) = reports
        # Transiently the probe black-holes towards the dead member...
        assert report.transient_losses == 1
        # ...but reconvergence redirects it, with zero failover config.
        assert report.recovered_delivery_ratio == 1.0
        survivor = scheme.resolve(case.probe)
        assert survivor == case.heir
        # And the heir really is the next-nearest live member (oracle).
        oracle = scheme.optimal_member_cost(case.probe)
        assert oracle is not None and oracle[0] == survivor

    def test_recovery_restores_the_original_member(self, case, igp_kind):
        net, orch, scheme = converged_scheme(case, igp_kind)
        plan = (FaultPlan()
                .crash_node(case.victim, at=10.0)
                .recover_node(case.victim, at=80.0))
        FaultInjector(orch, plan).play()
        scheme.post_converge_install()
        assert scheme.resolve(case.probe) == case.victim

    def test_reconvergence_time_is_reported(self, case, igp_kind):
        net, orch, scheme = converged_scheme(case, igp_kind)
        plan = FaultPlan().crash_node(case.victim, at=10.0)
        (report,) = FaultInjector(orch, plan).play()
        assert report.reconvergence_time is not None
        assert report.reconvergence_time > 0.0
        assert report.events_processed > 0


class TestDeploymentFailover:
    """Failover under a full IPvN deployment on a generated internet."""

    @pytest.fixture
    def internet(self):
        spec = InternetSpec(n_tier1=3, n_tier2=4, n_stub=8, hosts_per_stub=1,
                            routers_tier1=5, seed=47)
        return EvolvableInternet.generate(spec, seed=47)

    def test_vn_reachability_survives_member_crash(self, internet):
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        for asn in internet.stub_asns()[:2]:
            deployment.deploy(asn)
        deployment.rebuild()
        host = internet.hosts()[0]
        victim = deployment.scheme.resolve(host)
        assert victim is not None
        plan = (FaultPlan()
                .crash_node(victim, at=10.0)
                .recover_node(victim, at=200.0))
        injector = FaultInjector(internet.orchestrator, plan,
                                 deployments=[deployment])
        crash_report, recover_report = injector.play(
            workload=lambda: internet.reachability(8, sample=10))
        # While the victim is down, deliveries shift to live members.
        assert crash_report.recovered_delivery_ratio == 1.0
        assert deployment.scheme.resolve(host) == victim  # healed again
        assert victim in deployment.live_members()
        # Recovery epoch: full delivery with the original member back.
        assert recover_report.recovered_delivery_ratio == 1.0
