"""Integration tests for the fault injector against live control planes."""

import pytest

from repro.core.metrics import measure_reachability
from repro.core.orchestrator import Orchestrator
from repro.faults import FaultInjector, FaultPlan
from repro.net import Outcome, ipv4_packet
from repro.net.errors import FaultError

from tests.conftest import build_two_domain_network
from tests.topogen.fixtures import ring_domain

IGP_KINDS = ("linkstate", "distancevector")


def ring_orchestrator(igp_kind):
    net = ring_domain(4)
    orch = Orchestrator(net, igp_kind=igp_kind)
    orch.converge()
    return net, orch


def send(orch, src, dst):
    net = orch.network
    packet = ipv4_packet(net.node(src).ipv4, net.node(dst).ipv4)
    return orch.forward(packet, src)


class TestLinkFaults:
    @pytest.mark.parametrize("igp_kind", IGP_KINDS)
    def test_transient_loss_then_reroute(self, igp_kind):
        net, orch = ring_orchestrator(igp_kind)
        assert send(orch, "r0", "r2").node_path() == ["r0", "r1", "r2"]

        def workload():
            return measure_reachability(net, lambda s, d: send(orch, s, d),
                                        [("r0", "r2")])

        plan = FaultPlan().link_down("r0", "r1", at=10.0)
        reports = FaultInjector(orch, plan).play(workload)
        (report,) = reports
        # Before reconvergence the stale FIB forwards into the dead link.
        assert report.transient_losses == 1
        assert report.transient.failures == {"fault-dropped": 1}
        # After reconvergence delivery resumes on the surviving path.
        assert report.recovered_delivery_ratio == 1.0
        assert send(orch, "r0", "r2").node_path() == ["r0", "r3", "r2"]
        assert report.reconvergence_time > 0.0
        assert report.events_processed > 0

    @pytest.mark.parametrize("igp_kind", IGP_KINDS)
    def test_link_repair_restores_shortest_path(self, igp_kind):
        net, orch = ring_orchestrator(igp_kind)
        plan = (FaultPlan()
                .link_down("r0", "r1", at=10.0)
                .link_up("r0", "r1", at=50.0))
        FaultInjector(orch, plan).play()
        assert send(orch, "r0", "r1").node_path() == ["r0", "r1"]
        assert send(orch, "r0", "r2").delivered


class TestNodeFaults:
    @pytest.mark.parametrize("igp_kind", IGP_KINDS)
    def test_crash_and_recover_cycle(self, igp_kind):
        net, orch = ring_orchestrator(igp_kind)
        plan = (FaultPlan()
                .crash_node("r1", at=10.0)
                .recover_node("r1", at=60.0))
        reports = FaultInjector(orch, plan).play()
        assert len(reports) == 2
        # Recovery restored both the node and its crash-failed links.
        assert net.node("r1").up
        assert net.link_between("r0", "r1").up
        assert net.link_between("r1", "r2").up
        # r0->r2 is a cost tie on the 4-ring; either path is optimal,
        # but the recovered router must be reachable again.
        assert send(orch, "r0", "r2").physical_hops == 2
        assert send(orch, "r0", "r1").delivered

    @pytest.mark.parametrize("igp_kind", IGP_KINDS)
    def test_crashed_node_unreachable_after_reconvergence(self, igp_kind):
        net, orch = ring_orchestrator(igp_kind)
        plan = FaultPlan().crash_node("r1", at=10.0)
        FaultInjector(orch, plan).play()
        trace = send(orch, "r0", "r1")
        assert not trace.delivered
        # Routing withdrew the dead router; survivors still reach each other.
        assert send(orch, "r0", "r2").delivered

    @pytest.mark.parametrize("igp_kind", IGP_KINDS)
    def test_adjacent_double_crash_recovers_shared_link(self, igp_kind):
        net, orch = ring_orchestrator(igp_kind)
        plan = (FaultPlan()
                .crash_node("r1", at=10.0)
                .crash_node("r2", at=10.0)
                .recover_node("r1", at=60.0)
                .recover_node("r2", at=80.0))
        FaultInjector(orch, plan).play()
        # The r1<->r2 link died with the first crash; it must come back
        # once its *last* crashed endpoint recovers.
        assert net.link_between("r1", "r2").up
        assert send(orch, "r0", "r2").delivered

    def test_restoring_link_of_crashed_node_is_an_error(self):
        net, orch = ring_orchestrator("linkstate")
        plan = (FaultPlan()
                .crash_node("r1", at=10.0)
                .link_up("r0", "r1", at=20.0))
        with pytest.raises(FaultError, match="crashed"):
            FaultInjector(orch, plan).play()


class TestMessageFaults:
    @pytest.mark.parametrize("igp_kind", IGP_KINDS)
    def test_lossy_window_still_converges(self, igp_kind):
        net, orch = ring_orchestrator(igp_kind)
        plan = (FaultPlan()
                .message_loss(start=5.0, end=40.0, prob=0.3)
                .link_down("r0", "r1", at=10.0))
        reports = FaultInjector(orch, plan).play()
        scheduler = orch.scheduler
        assert scheduler.messages_lost > 0
        # The loss window closed; perturbation is gone.
        assert scheduler.message_perturbation is None
        # Even with 30% control-message loss the IGP converged to the
        # alternate path (retries come from solicitation/flooding).
        assert send(orch, "r0", "r2").delivered


class TestInterDomain:
    def test_peering_link_fault_withdraws_bgp_routes(self):
        net = build_two_domain_network()
        orch = Orchestrator(net)
        orch.converge()
        assert send(orch, "h1", "h2").delivered
        plan = (FaultPlan()
                .link_down("r1b", "r2b", at=10.0)
                .link_up("r1b", "r2b", at=50.0))
        injector = FaultInjector(orch, plan)

        # Run the first epoch only, by splitting the plan.
        down_only = FaultPlan().link_down("r1b", "r2b", at=10.0)
        net2 = build_two_domain_network()
        orch2 = Orchestrator(net2)
        orch2.converge()
        FaultInjector(orch2, down_only).play()
        trace = send(orch2, "h1", "h2")
        assert not trace.delivered
        # BGP withdrew the route (session resync), so this is NO_ROUTE,
        # not a packet black-holing into the dead link.
        assert trace.outcome is Outcome.NO_ROUTE

        # Full down/up cycle heals end to end.
        injector.play()
        assert send(orch, "h1", "h2").delivered

    def test_whole_domain_crash_flushes_speaker(self):
        net = build_two_domain_network()
        orch = Orchestrator(net)
        orch.converge()
        plan = (FaultPlan()
                .crash_node("r2a", at=10.0)
                .crash_node("r2b", at=10.0)
                .recover_node("r2a", at=60.0)
                .recover_node("r2b", at=60.0))
        FaultInjector(orch, plan).play()
        # After the full cycle AS2 reannounced and reachability healed.
        assert send(orch, "h1", "h2").delivered
        assert send(orch, "h2", "h1").delivered

    def test_whole_domain_crash_is_no_route_while_down(self):
        net = build_two_domain_network()
        orch = Orchestrator(net)
        orch.converge()
        plan = FaultPlan().crash_node("r2a", at=10.0).crash_node("r2b", at=10.0)
        FaultInjector(orch, plan).play()
        trace = send(orch, "h1", "h2")
        assert not trace.delivered
        assert trace.outcome is Outcome.NO_ROUTE


class TestInjectorLifecycle:
    def test_replay_is_rejected(self):
        net, orch = ring_orchestrator("linkstate")
        plan = FaultPlan().link_down("r0", "r1", at=10.0)
        injector = FaultInjector(orch, plan)
        injector.play()
        with pytest.raises(FaultError, match="already played"):
            injector.play()

    def test_plan_validated_eagerly(self):
        net, orch = ring_orchestrator("linkstate")
        plan = FaultPlan().crash_node("ghost", at=1.0)
        with pytest.raises(FaultError, match="unknown node"):
            FaultInjector(orch, plan)

    def test_records_audit_log(self):
        net, orch = ring_orchestrator("linkstate")
        plan = FaultPlan().link_down("r0", "r1", at=10.0).crash_node("r2", at=20.0)
        injector = FaultInjector(orch, plan)
        injector.play()
        assert [record.description for record in injector.records] == [
            "link-down r0<->r1", "node-crash r2"]
        first, second = injector.records
        # Plan times are scenario-relative; the epochs stay 10 apart.
        assert second.time - first.time == 10.0
