"""Unit tests for the declarative fault plan."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.net.errors import FaultError

from tests.topogen.fixtures import line_domain


class TestConstruction:
    def test_chainable_builder(self):
        plan = (FaultPlan()
                .link_down("r0", "r1", at=5.0)
                .crash_node("r2", at=10.0)
                .recover_node("r2", at=20.0)
                .link_up("r0", "r1", at=20.0))
        assert len(plan) == 4
        kinds = [event.kind for event in plan]
        assert kinds == [FaultKind.LINK_DOWN, FaultKind.NODE_CRASH,
                         FaultKind.NODE_RECOVER, FaultKind.LINK_UP]

    def test_events_sorted_by_time_stable(self):
        plan = (FaultPlan()
                .crash_node("b", at=10.0)
                .link_down("x", "y", at=5.0)
                .crash_node("a", at=10.0))
        times = [event.time for event in plan.events()]
        assert times == [5.0, 10.0, 10.0]
        # Stable on ties: insertion order preserved.
        assert plan.events()[1].target == ("b",)
        assert plan.events()[2].target == ("a",)

    def test_epochs_group_same_time_events(self):
        plan = (FaultPlan()
                .crash_node("a", at=10.0)
                .crash_node("b", at=10.0)
                .recover_node("a", at=20.0))
        epochs = plan.epochs()
        assert [t for t, _ in epochs] == [10.0, 20.0]
        assert len(epochs[0][1]) == 2
        assert len(epochs[1][1]) == 1

    def test_message_loss_emits_window_pair(self):
        plan = FaultPlan().message_loss(start=1.0, end=9.0, prob=0.25, jitter=2.0)
        start, end = plan.events()
        assert start.kind is FaultKind.LOSS_START
        assert start.loss_prob == 0.25
        assert start.reorder_jitter == 2.0
        assert end.kind is FaultKind.LOSS_END
        assert end.time == 9.0

    def test_empty_window_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().message_loss(start=5.0, end=5.0, prob=0.5)


class TestValidation:
    def test_valid_plan_passes(self):
        net = line_domain()
        plan = (FaultPlan()
                .link_down("r0", "r1", at=1.0)
                .crash_node("r2", at=2.0)
                .message_loss(start=0.0, end=3.0, prob=0.1))
        plan.validate(net)  # must not raise

    def test_unknown_node_rejected(self):
        net = line_domain()
        with pytest.raises(FaultError, match="unknown node"):
            FaultPlan().crash_node("nope", at=1.0).validate(net)

    def test_missing_link_rejected(self):
        net = line_domain()
        with pytest.raises(FaultError, match="no link"):
            FaultPlan().link_down("r0", "r4", at=1.0).validate(net)

    def test_negative_time_rejected(self):
        net = line_domain()
        with pytest.raises(FaultError, match="finite"):
            FaultPlan().crash_node("r0", at=-1.0).validate(net)

    def test_bad_loss_prob_rejected(self):
        net = line_domain()
        plan = FaultPlan().add(FaultEvent(time=0.0, kind=FaultKind.LOSS_START,
                                          loss_prob=1.5))
        with pytest.raises(FaultError, match="loss_prob"):
            plan.validate(net)


class TestSerialization:
    def test_json_round_trip(self):
        plan = (FaultPlan()
                .link_down("r0", "r1", at=5.0)
                .crash_node("r2", at=10.0)
                .message_loss(start=10.0, end=30.0, prob=0.05, jitter=1.0))
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.events() == plan.events()

    def test_malformed_json_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("not json at all {")
        with pytest.raises(FaultError):
            FaultPlan.from_json('{"a": 1}')
        with pytest.raises(FaultError):
            FaultPlan.from_json('[{"time": 1.0, "kind": "frobnicate"}]')

    def test_describe_is_human_readable(self):
        plan = FaultPlan().link_down("r0", "r1", at=5.0).crash_node("r2", at=6.0)
        described = [event.describe() for event in plan]
        assert described == ["link-down r0<->r1", "node-crash r2"]
