"""Test-local workloads the fleet tests sweep.

Importable by module name (``tests.fleet._workloads``) so fleet
matrices can list it under ``imports`` and worker processes — which do
not inherit the parent's registry under the spawn start method — can
re-register it.  Registration is guarded, because imports are cached
per process but the registry check raises on duplicates.
"""

from repro.experiments.base import (ExperimentResult, Param, _REGISTRY,
                                    register)

PROBE_ID = "fleet_probe"
CRASH_ID = "fleet_crash"


def _probe(seed: int = 0, params=None) -> ExperimentResult:
    params = params or {}
    scale = params.get("scale", 2)
    offset = params.get("offset", 0)
    value = (seed * scale + offset) % 9973
    return ExperimentResult(
        experiment_id=PROBE_ID, title="fleet probe",
        header="seed scale offset value",
        rows=[f"{seed} {scale} {offset} {value}"],
        data={"seed": seed, "scale": scale, "offset": offset,
              "value": value},
        seed=seed, params=dict(params))


def _crash(seed: int = 0, params=None) -> ExperimentResult:
    raise RuntimeError(f"injected cell failure (seed={seed})")


if PROBE_ID not in _REGISTRY:
    register(PROBE_ID, "cheap seed-dependent probe (fleet tests)",
             params={"scale": Param("int", 2, "multiplier"),
                     "offset": Param("int", 0, "additive term")},
             tags=("test",))(_probe)

if CRASH_ID not in _REGISTRY:
    register(CRASH_ID, "always-crashing workload (fleet tests)",
             params={}, tags=("test",))(_crash)
