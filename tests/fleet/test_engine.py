"""The sweep engine: determinism across worker counts, isolation,
caching, per-cell traces, the ``repro.fleet/v1`` document, and the CLI."""

import json

import pytest

from repro.fleet import (FLEET_SCHEMA, FleetMatrix, execute_cell,
                         fleet_to_json, run_fleet, validate_fleet_dict,
                         write_fleet)
from repro.net.errors import FleetError
from repro.obs import validate_trace

from tests.fleet._workloads import CRASH_ID, PROBE_ID

IMPORTS = ["tests.fleet._workloads"]


def probe_matrix(**overrides):
    doc = {"workloads": [PROBE_ID], "base_seed": 11,
           "axes": {"scale": [1, 3], "offset": [0, 10]}, "repeats": 2,
           "imports": IMPORTS}
    doc.update(overrides)
    return FleetMatrix.from_dict(doc)


class TestExecuteCell:
    def test_ok_record_carries_a_valid_artifact(self):
        cell = probe_matrix().cells()[0]
        record = execute_cell(cell, imports=IMPORTS)
        assert record["ok"] is True
        assert record["error"] is None
        artifact = record["artifact"]
        assert artifact["seed"] == cell.seed
        assert artifact["data"]["value"] == (cell.seed * 1 + 0) % 9973
        assert artifact["trace_path"] is None

    def test_crash_is_contained(self):
        cell = FleetMatrix.from_dict(
            {"workload": CRASH_ID, "imports": IMPORTS}).cells()[0]
        record = execute_cell(cell, imports=IMPORTS)
        assert record["ok"] is False
        assert record["artifact"] is None
        assert record["error"] == (
            f"RuntimeError: injected cell failure (seed={cell.seed})")

    def test_traced_cell_writes_a_valid_stream(self, tmp_path):
        cell = probe_matrix().cells()[0]
        record = execute_cell(cell, imports=IMPORTS,
                              traces_dir=str(tmp_path / "traces"))
        assert record["artifact"]["trace_path"] == f"{cell.name}.jsonl"
        trace = tmp_path / "traces" / f"{cell.name}.jsonl"
        assert trace.exists()
        assert validate_trace(str(trace)) == []


class TestDeterminism:
    def test_workers_1_and_2_merge_byte_identically(self):
        matrix = probe_matrix()
        serial = fleet_to_json(run_fleet(matrix, workers=1))
        fanned = fleet_to_json(run_fleet(matrix, workers=2))
        assert serial == fanned

    def test_report_contains_no_wall_metrics(self):
        doc = run_fleet(probe_matrix(repeats=1), workers=1)
        assert "wall_" not in fleet_to_json(doc)

    def test_base_seed_changes_every_cell(self):
        values_a = [c["artifact"]["data"]["value"]
                    for c in run_fleet(probe_matrix(), workers=1)["cells"]]
        values_b = [c["artifact"]["data"]["value"]
                    for c in run_fleet(probe_matrix(base_seed=12),
                                       workers=1)["cells"]]
        assert values_a != values_b


class TestIsolation:
    def test_crashing_cells_do_not_abort_the_sweep(self):
        matrix = FleetMatrix.from_dict(
            {"workloads": [PROBE_ID, CRASH_ID], "base_seed": 3,
             "repeats": 2, "imports": IMPORTS})
        doc = run_fleet(matrix, workers=2)
        assert doc["totals"] == {
            "cells": 4, "ok": 2, "failed": 2,
            "by_workload": {
                CRASH_ID: {"cells": 2, "ok": 0, "failed": 2},
                PROBE_ID: {"cells": 2, "ok": 2, "failed": 0}}}
        for record in doc["cells"]:
            if not record["ok"]:
                assert record["error"].startswith("RuntimeError:")
        assert validate_fleet_dict(doc) == []

    def test_preflight_rejects_unknown_workloads(self):
        matrix = FleetMatrix.from_dict({"workload": "no_such_workload"})
        with pytest.raises(FleetError, match="registry"):
            run_fleet(matrix)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(FleetError, match="workers"):
            run_fleet(probe_matrix(), workers=0)


class TestCache:
    def test_resume_merges_identically(self, tmp_path):
        matrix = probe_matrix()
        cache = str(tmp_path / "cache")
        cold = run_fleet(matrix, workers=2, cache_dir=cache)
        cached = (tmp_path / "cache" / matrix.spec_hash()).glob("*.json")
        assert len(list(cached)) == len(matrix.cells())
        warm = run_fleet(matrix, workers=1, cache_dir=cache)
        assert fleet_to_json(cold) == fleet_to_json(warm)

    def test_corrupt_cache_entries_are_recomputed(self, tmp_path):
        matrix = probe_matrix(repeats=1)
        cache = str(tmp_path / "cache")
        cold = run_fleet(matrix, workers=1, cache_dir=cache)
        victim = (tmp_path / "cache" / matrix.spec_hash()
                  / "cell-0000.json")
        victim.write_text("{corrupt")
        again = run_fleet(matrix, workers=1, cache_dir=cache)
        assert fleet_to_json(cold) == fleet_to_json(again)

    def test_editing_the_matrix_misses_the_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_fleet(probe_matrix(), workers=1, cache_dir=cache)
        run_fleet(probe_matrix(base_seed=12), workers=1, cache_dir=cache)
        assert len(list((tmp_path / "cache").iterdir())) == 2


class TestDocument:
    def test_envelope(self, tmp_path):
        matrix = probe_matrix(repeats=1)
        doc = run_fleet(matrix, workers=1)
        assert doc["schema"] == FLEET_SCHEMA
        assert doc["matrix"] == matrix.to_dict()
        assert doc["spec_hash"] == matrix.spec_hash()
        out = tmp_path / "FLEET.json"
        write_fleet(doc, str(out))
        assert json.loads(out.read_text()) == doc
        assert out.read_text() == fleet_to_json(doc)

    def test_validator_catches_tampering(self):
        doc = run_fleet(probe_matrix(repeats=1), workers=1)
        assert validate_fleet_dict(doc) == []
        assert validate_fleet_dict([]) != []
        tampered = json.loads(fleet_to_json(doc))
        tampered["totals"]["ok"] += 1
        assert any("totals.ok" in e for e in validate_fleet_dict(tampered))
        reordered = json.loads(fleet_to_json(doc))
        reordered["cells"].reverse()
        assert any("out of order" in e
                   for e in validate_fleet_dict(reordered))
        broken = json.loads(fleet_to_json(doc))
        del broken["cells"][0]["artifact"]["seed"]
        assert any("artifact: seed" in e for e in validate_fleet_dict(broken))


class TestCli:
    def write_matrix(self, tmp_path, doc):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_fleet_command_is_deterministic_across_workers(self, tmp_path,
                                                           capsys):
        from repro.cli import main

        matrix = self.write_matrix(tmp_path, probe_matrix().to_dict())
        out1, out2 = str(tmp_path / "w1.json"), str(tmp_path / "w2.json")
        assert main(["fleet", "--matrix", matrix, "--out", out1,
                     "--quiet"]) == 0
        assert main(["fleet", "--matrix", matrix, "--workers", "2",
                     "--out", out2, "--quiet"]) == 0
        assert (tmp_path / "w1.json").read_bytes() == \
            (tmp_path / "w2.json").read_bytes()
        report = json.loads((tmp_path / "w1.json").read_text())
        assert report["totals"]["ok"] == 8

    def test_failed_cells_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        matrix = self.write_matrix(tmp_path, {
            "workload": CRASH_ID, "imports": IMPORTS})
        assert main(["fleet", "--matrix", matrix,
                     "--out", str(tmp_path / "f.json"), "--quiet"]) == 1

    def test_malformed_matrix_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fleet", "--matrix", str(tmp_path / "missing.json"),
                     "--quiet"]) == 2
        assert "fleet:" in capsys.readouterr().err
