"""The ``repro.matrix/v1`` format: parsing, enumeration, seed derivation."""

import json

import pytest

from repro.fleet import FleetMatrix, cell_seed
from repro.fleet.spec import MATRIX_SCHEMA
from repro.net.errors import FleetError

from tests.fleet import _workloads  # noqa: F401  (registers fleet_probe)


def make_matrix(**overrides):
    doc = {"schema": MATRIX_SCHEMA, "workloads": ["fleet_probe"],
           "base_seed": 7, "axes": {"scale": [1, 3], "offset": [0, 10]},
           "repeats": 2}
    doc.update(overrides)
    return FleetMatrix.from_dict(doc)


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(0, 7) == cell_seed(0, 7)

    def test_varies_with_index_and_base(self):
        seeds = {cell_seed(i, 7) for i in range(100)}
        assert len(seeds) == 100
        assert cell_seed(0, 7) != cell_seed(0, 8)

    def test_in_int32_range(self):
        for i in range(50):
            assert 0 <= cell_seed(i, 12345) < 2 ** 31 - 1


class TestParsing:
    def test_singular_workload_shorthand(self):
        matrix = FleetMatrix.from_dict(
            {"schema": MATRIX_SCHEMA, "workload": "fleet_probe"})
        assert matrix.workloads == ("fleet_probe",)
        assert matrix.repeats == 1
        assert matrix.axes == {}

    def test_both_forms_rejected(self):
        with pytest.raises(FleetError, match="not both"):
            FleetMatrix.from_dict({"workload": "a", "workloads": ["b"]})

    @pytest.mark.parametrize("doc,match", [
        ([], "expected object"),
        ({"schema": "repro.matrix/v0", "workload": "x"}, "schema"),
        ({}, "workloads"),
        ({"workloads": []}, "workloads"),
        ({"workload": "x", "base_seed": "7"}, "base_seed"),
        ({"workload": "x", "base_seed": True}, "base_seed"),
        ({"workload": "x", "repeats": 0}, "repeats"),
        ({"workload": "x", "axes": {"a": []}}, "axes.a"),
        ({"workload": "x", "axes": {"a": [[1]]}}, "axes.a"),
        ({"workload": "x", "imports": [3]}, "imports"),
    ])
    def test_malformed_matrices_rejected(self, doc, match):
        with pytest.raises(FleetError, match=match):
            FleetMatrix.from_dict(doc)

    def test_file_round_trip(self, tmp_path):
        matrix = make_matrix()
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(matrix.to_dict()))
        assert FleetMatrix.from_file(str(path)) == matrix

    def test_missing_file(self, tmp_path):
        with pytest.raises(FleetError, match="matrix file"):
            FleetMatrix.from_file(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(FleetError, match="invalid JSON"):
            FleetMatrix.from_file(str(bad))


class TestEnumeration:
    def test_cell_count_is_the_product(self):
        assert len(make_matrix().cells()) == 2 * 2 * 2

    def test_canonical_order_and_seeds(self):
        cells = make_matrix(repeats=1).cells()
        # Axis names sorted (offset before scale), values in listed order.
        assert [c.params for c in cells] == [
            {"offset": 0, "scale": 1}, {"offset": 0, "scale": 3},
            {"offset": 10, "scale": 1}, {"offset": 10, "scale": 3}]
        for cell in cells:
            assert cell.index == cells.index(cell)
            assert cell.seed == cell_seed(cell.index, 7)
            assert cell.name == f"cell-{cell.index:04d}"

    def test_repeats_share_params_not_seeds(self):
        cells = make_matrix().cells()
        first, second = cells[0], cells[1]
        assert first.params == second.params
        assert (first.repeat, second.repeat) == (0, 1)
        assert first.seed != second.seed

    def test_axisless_matrix_has_repeat_cells(self):
        matrix = FleetMatrix.from_dict(
            {"workload": "fleet_probe", "repeats": 3})
        assert [c.params for c in matrix.cells()] == [{}, {}, {}]


class TestSpecHash:
    def test_stable_and_sensitive(self):
        assert make_matrix().spec_hash() == make_matrix().spec_hash()
        assert (make_matrix(base_seed=8).spec_hash()
                != make_matrix().spec_hash())
        assert (make_matrix(repeats=1).spec_hash()
                != make_matrix().spec_hash())


class TestRegistryValidation:
    def test_clean_matrix_validates(self):
        assert make_matrix().validate_against_registry() == []

    def test_unknown_workload_reported(self):
        matrix = FleetMatrix.from_dict({"workload": "no_such_workload"})
        errors = matrix.validate_against_registry()
        assert errors and "unknown experiment" in errors[0]

    def test_axis_values_checked_against_the_param_schema(self):
        bad_kind = make_matrix(axes={"scale": ["wide"]})
        assert any("expects int" in e
                   for e in bad_kind.validate_against_registry())
        unknown = make_matrix(axes={"bogus": [1]})
        assert any("unknown param" in e
                   for e in unknown.validate_against_registry())
