"""Deployment churn and concurrent-generation integration tests."""

import pytest

from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec
from repro.vnbone import EgressPolicy


@pytest.fixture
def internet():
    spec = InternetSpec(n_tier1=2, n_tier2=3, n_stub=5, hosts_per_stub=1,
                        seed=21)
    return EvolvableInternet.generate(spec, seed=21)


class TestChurn:
    def test_rollback_and_redeploy_cycles(self, internet):
        deployment = internet.new_deployment(version=8, scheme="default")
        anchor = deployment.scheme.default_asn
        deployment.deploy(anchor)
        stubs = internet.stub_asns()[:3]
        for cycle in range(2):
            for asn in stubs:
                deployment.deploy(asn)
            deployment.rebuild()
            assert internet.reachability(8, sample=15).delivery_ratio == 1.0
            for asn in stubs:
                deployment.undeploy(asn)
            deployment.rebuild()
            assert internet.reachability(8, sample=15).delivery_ratio == 1.0

    def test_anycast_state_fully_cleaned_after_rollback(self, internet):
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        victim = internet.stub_asns()[0]
        deployment.deploy(victim)
        deployment.rebuild()
        deployment.undeploy(victim)
        deployment.rebuild()
        address = deployment.scheme.address
        for router in internet.network.routers(victim):
            assert not router.accepts_ipv4(address)
            assert router.vn_state_for(8) is None

    def test_link_failure_then_reconvergence(self, internet):
        """Fail one provider link of a multihomed stub: BGP sessions
        resync, routing shifts to the surviving provider, and IPvN
        universal access is unharmed."""
        deployment = internet.new_deployment(version=8, scheme="default")
        anchor = deployment.scheme.default_asn
        deployment.deploy(anchor)
        deployment.rebuild()
        assert internet.reachability(8, sample=15).delivery_ratio == 1.0
        multihomed = next(asn for asn in internet.stub_asns()
                          if len(internet.network.domains[asn].providers()) >= 2)
        victim_provider = internet.network.domains[multihomed].providers()[0]
        for link in internet.network.links.values():
            ends = {internet.network.node(link.a).domain_id,
                    internet.network.node(link.b).domain_id}
            if ends == {multihomed, victim_provider}:
                link.fail()
                break
        deployment.rebuild()
        report = internet.reachability(8, sample=15)
        assert report.delivery_ratio == 1.0, report.failures


class TestMultiVersion:
    def test_three_generations_coexist(self, internet):
        """IPv8, IPv9, IPv10 deployed by different ISPs under different
        schemes, all with universal access at once."""
        tier1 = internet.tier1_asns()
        ipv8 = internet.new_deployment(version=8, scheme="default",
                                       default_asn=tier1[0])
        ipv9 = internet.new_deployment(version=9, scheme="global")
        ipv10 = internet.new_deployment(version=10, scheme="default",
                                        default_asn=tier1[1],
                                        egress_policy=EgressPolicy.PROXY)
        ipv8.deploy(tier1[0])
        ipv9.deploy(internet.stub_asns()[0])
        ipv10.deploy(tier1[1])
        for deployment in (ipv8, ipv9, ipv10):
            deployment.rebuild()
        for version in (8, 9, 10):
            report = internet.reachability(version, sample=15)
            assert report.delivery_ratio == 1.0, (version, report.failures)

    def test_versions_have_disjoint_anycast_addresses(self, internet):
        ipv8 = internet.new_deployment(version=8, scheme="default")
        ipv9 = internet.new_deployment(version=9, scheme="global")
        assert ipv8.scheme.address != ipv9.scheme.address

    def test_host_addresses_per_version(self, internet):
        ipv8 = internet.new_deployment(version=8, scheme="default")
        ipv9 = internet.new_deployment(version=9, scheme="global")
        ipv8.deploy(ipv8.scheme.default_asn)
        ipv9.deploy(internet.stub_asns()[0])
        ipv8.rebuild()
        ipv9.rebuild()
        host = internet.hosts()[0]
        a8 = ipv8.plan.ensure_host_address(host)
        a9 = ipv9.plan.ensure_host_address(host)
        assert a8.version == 8 and a9.version == 9
