"""Determinism regression: same topology + seed -> byte-identical runs.

The simulator's whole value as an experimental instrument rests on
reproducibility: every protocol message, SPF tie-break, fault
perturbation, and forwarding trace must depend only on (topology,
seed).  These tests run a full scenario twice — generated internet,
IPvN deployment, fault plan with a node crash and a probabilistic
message-loss window — serialize everything observable into one JSON
blob, and require the two blobs to be *byte-identical*.

A failure here means nondeterminism crept in somewhere (iteration over
an unordered set, an unseeded RNG, id()-based tie-breaking...), which
silently invalidates every benchmark in the repo.
"""

import json

import pytest

from repro.core.evolution import EvolvableInternet
from repro.core.metrics import ReachabilityReport
from repro.faults import FaultInjector, FaultPlan
from repro.topogen import InternetSpec

IGP_KINDS = ("linkstate", "distancevector")

SPEC = dict(n_tier1=2, n_tier2=3, n_stub=6, hosts_per_stub=1, seed=11)


def run_scenario(igp_kind, with_faults):
    """One full experiment; returns a JSON blob of everything observable."""
    internet = EvolvableInternet.generate(InternetSpec(**SPEC), seed=11,
                                          igp_kind=igp_kind)
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    for asn in internet.stub_asns()[:2]:
        deployment.deploy(asn)
    deployment.rebuild()

    hosts = internet.hosts()
    pairs = [(a, b) for a in hosts[:3] for b in hosts[:3] if a != b]
    traces = []

    def workload():
        report = ReachabilityReport()
        for src, dst in pairs:
            trace = deployment.send(src, dst)
            traces.append(str(trace))
            report.record(internet.network, trace, src, dst)
        return report

    epochs = []
    if with_faults:
        victim = sorted(deployment.members())[0]
        plan = (FaultPlan()
                .message_loss(start=5.0, end=60.0, prob=0.2, jitter=1.5)
                .crash_node(victim, at=10.0)
                .recover_node(victim, at=80.0))
        injector = FaultInjector(internet.orchestrator, plan,
                                 deployments=[deployment])
        epochs = [report.to_dict() for report in injector.play(workload)]
    final = workload()

    scheduler = internet.orchestrator.scheduler
    return json.dumps({
        "traces": traces,
        "epochs": epochs,
        "final_delivery": final.delivery_ratio,
        "final_stretches": final.stretches,
        "now": scheduler.now,
        "events_processed": scheduler.events_processed,
        "messages_lost": scheduler.messages_lost,
        "messages_reordered": scheduler.messages_reordered,
        "message_totals": internet.orchestrator.message_totals(),
    }, sort_keys=True)


@pytest.mark.parametrize("igp_kind", IGP_KINDS)
class TestDeterminism:
    def test_identical_runs_without_faults(self, igp_kind):
        first = run_scenario(igp_kind, with_faults=False)
        second = run_scenario(igp_kind, with_faults=False)
        assert first == second

    def test_identical_runs_under_fault_plan(self, igp_kind):
        first = run_scenario(igp_kind, with_faults=True)
        second = run_scenario(igp_kind, with_faults=True)
        assert first == second
        # The run was not trivially empty: faults really perturbed it.
        data = json.loads(first)
        assert len(data["epochs"]) == 4
        assert data["traces"]

    def test_seed_changes_the_perturbed_run(self, igp_kind):
        """The loss window consumes seeded randomness: a different seed
        must be allowed to produce a different run (sanity check that
        the determinism above is not vacuous)."""
        baseline = json.loads(run_scenario(igp_kind, with_faults=True))
        assert baseline["messages_lost"] > 0
