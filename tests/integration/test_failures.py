"""Failure-injection integration tests: routers and links dying under a
live IPvN deployment, and the control planes healing around them."""

import pytest

from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec


@pytest.fixture
def internet():
    spec = InternetSpec(n_tier1=3, n_tier2=4, n_stub=8, hosts_per_stub=1,
                        routers_tier1=5, seed=47)
    return EvolvableInternet.generate(spec, seed=47)


def deploy_ipv8(internet, extra=2):
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    for asn in internet.stub_asns()[:extra]:
        deployment.deploy(asn)
    deployment.rebuild()
    return deployment


class TestAnycastMemberFailure:
    def test_probes_shift_to_surviving_members(self, internet):
        deployment = deploy_ipv8(internet)
        scheme = deployment.scheme
        host = internet.hosts()[0]
        first = scheme.resolve(host)
        assert first is not None
        internet.network.fail_router(first)
        deployment.rebuild()
        second = scheme.resolve(host)
        assert second is not None
        assert second != first

    def test_reachability_survives_one_member_failure(self, internet):
        deployment = deploy_ipv8(internet)
        victim = sorted(deployment.members())[0]
        internet.network.fail_router(victim)
        deployment.rebuild()
        report = internet.reachability(8, sample=20)
        assert report.delivery_ratio == 1.0, report.failures

    def test_restore_heals(self, internet):
        deployment = deploy_ipv8(internet)
        host = internet.hosts()[0]
        victim = deployment.scheme.resolve(host)
        internet.network.fail_router(victim)
        deployment.rebuild()
        internet.network.restore_router(victim)
        deployment.rebuild()
        assert deployment.scheme.resolve(host) == victim


class TestVnBoneFailure:
    def test_tunnels_avoid_dead_members(self, internet):
        deployment = deploy_ipv8(internet)
        victim = sorted(deployment.members())[0]
        internet.network.fail_router(victim)
        deployment.rebuild()
        for tunnel in deployment.tunnels:
            assert victim not in (tunnel.a, tunnel.b)

    def test_vn_routes_skip_dead_members(self, internet):
        deployment = deploy_ipv8(internet)
        members = sorted(deployment.members())
        victim = members[0]
        survivor = members[-1]
        internet.network.fail_router(victim)
        deployment.rebuild()
        assert victim not in deployment.routing.reachable_members(survivor)


class TestLinkFlapping:
    def test_repeated_fail_restore_cycles_stay_consistent(self, internet):
        deployment = deploy_ipv8(internet)
        baseline = internet.reachability(8, sample=15).delivery_ratio
        assert baseline == 1.0
        # Flap one *redundant* intra-domain tier-1 link three times
        # (failing a cut link would legitimately partition the domain).
        tier1 = internet.tier1_asns()[0]
        routers = sorted(internet.network.domains[tier1].routers)
        link = None
        for candidate in internet.network.links.values():
            if candidate.a in routers and candidate.b in routers:
                candidate.fail()
                still_connected = internet.network.shortest_path(
                    candidate.a, candidate.b,
                    intra_domain_only=True) is not None
                candidate.restore()
                if still_connected:
                    link = candidate
                    break
        assert link is not None, "topology has no redundant tier-1 link"
        for _ in range(3):
            link.fail()
            deployment.rebuild()
            assert internet.reachability(8, sample=10).delivery_ratio == 1.0
            link.restore()
            deployment.rebuild()
            assert internet.reachability(8, sample=10).delivery_ratio == 1.0
