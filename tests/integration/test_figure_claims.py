"""End-to-end tests of the paper's four figure walk-throughs.

Each test class sets up the corresponding figure topology and asserts
the *claims the paper makes about it*, driven through the real data
plane (host encapsulation, anycast delivery, vN-Bone tunnels, egress).
"""

import pytest

from repro.core.metrics import vn_coverage, vn_tail_length
from repro.core.orchestrator import Orchestrator
from repro.anycast import DefaultRootedAnycast, GlobalAnycast
from repro.topogen import figure1, figure2, figure3, figure4
from repro.vnbone import EgressPolicy, VnDeployment


class TestFigure1SeamlessSpread:
    """IPv8 deployed successively in X, then Y, then Z; client C is
    seamlessly redirected to the closest IPv8 provider throughout."""

    def setup(self):
        self.fig = figure1()
        self.orch = Orchestrator(self.fig.network)
        self.orch.converge()
        self.scheme = GlobalAnycast(self.orch, "ipv8")

    def deploy(self, name):
        for router in sorted(self.fig.network.domains[self.fig.asn(name)].routers):
            self.scheme.add_member(router)
        self.orch.reconverge()

    def test_redirection_follows_deployment(self):
        self.setup()
        self.deploy("X")
        first = self.scheme.resolve("client_c")
        assert self.fig.network.node(first).domain_id == self.fig.asn("X")
        self.deploy("Y")
        second = self.scheme.resolve("client_c")
        assert self.fig.network.node(second).domain_id == self.fig.asn("Y")
        self.deploy("Z")
        third = self.scheme.resolve("client_c")
        assert self.fig.network.node(third).domain_id == self.fig.asn("Z")

    def test_redirection_distance_monotone_nonincreasing(self):
        self.setup()
        costs = []
        for name in ("X", "Y", "Z"):
            self.deploy(name)
            trace = self.scheme.probe("client_c")
            costs.append(self.scheme.path_cost(trace))
        assert costs[0] >= costs[1] >= costs[2]

    def test_client_needs_no_reconfiguration(self):
        """The client's only configuration is the well-known anycast
        address, which never changes across deployment stages."""
        self.setup()
        address_before = self.scheme.address
        for name in ("X", "Y", "Z"):
            self.deploy(name)
        assert self.scheme.address == address_before


class TestFigure3EgressSelection:
    """With BGPv(N-1) import, the packet rides the vN-Bone M -> O and
    exits at O (one AS hop from C) instead of exiting at M."""

    def build(self, policy):
        fig = figure3()
        orch = Orchestrator(fig.network)
        orch.converge()
        scheme = DefaultRootedAnycast(orch, "ipvN", default_asn=fig.asn("M"))
        deployment = VnDeployment(orch, scheme, version=8,
                                  egress_policy=policy)
        deployment.deploy(fig.asn("M"))
        deployment.deploy(fig.asn("O"))
        deployment.rebuild()
        return fig, orch, deployment

    def test_exit_immediately_leaves_at_m(self):
        fig, orch, deployment = self.build(EgressPolicy.EXIT_IMMEDIATELY)
        trace = deployment.send("host_m", "client_c")
        assert trace.delivered
        assert fig.network.node(trace.egress_router).domain_id == fig.asn("M")

    def test_bgp_informed_exits_in_o(self):
        fig, orch, deployment = self.build(EgressPolicy.BGP_INFORMED)
        trace = deployment.send("host_m", "client_c")
        assert trace.delivered
        assert fig.network.node(trace.egress_router).domain_id == fig.asn("O")

    def test_bgp_informed_shortens_legacy_tail(self):
        fig, _, naive = self.build(EgressPolicy.EXIT_IMMEDIATELY)
        naive_trace = naive.send("host_m", "client_c")
        fig2, _, informed = self.build(EgressPolicy.BGP_INFORMED)
        informed_trace = informed.send("host_m", "client_c")
        naive_tail = vn_tail_length(fig.network, naive_trace)
        informed_tail = vn_tail_length(fig2.network, informed_trace)
        assert naive_tail is not None and informed_tail is not None
        assert informed_tail < naive_tail

    def test_bgp_informed_increases_vn_coverage(self):
        fig, _, naive = self.build(EgressPolicy.EXIT_IMMEDIATELY)
        fig2, _, informed = self.build(EgressPolicy.BGP_INFORMED)
        naive_cov = vn_coverage(naive.send("host_m", "client_c"))
        informed_cov = vn_coverage(informed.send("host_m", "client_c"))
        assert informed_cov > naive_cov


class TestFigure4AdvertisingByProxy:
    """With B and C proxying Z, the path A -> Z rides the vN-Bone;
    without, it exits at A and crosses M and N as IPv(N-1)."""

    def build(self, policy, threshold=2):
        # Threshold 2 lets both B (two IPv(N-1) hops from Z via C) and
        # C (one hop) proxy Z, as in the figure's caption.
        fig = figure4()
        orch = Orchestrator(fig.network)
        orch.converge()
        scheme = DefaultRootedAnycast(orch, "ipvN", default_asn=fig.asn("A"))
        deployment = VnDeployment(orch, scheme, version=8,
                                  egress_policy=policy,
                                  proxy_threshold=threshold)
        for name in ("A", "B", "C"):
            deployment.deploy(fig.asn(name))
        deployment.rebuild()
        return fig, orch, deployment

    def test_proxies_are_b_and_c(self):
        fig, orch, deployment = self.build(EgressPolicy.PROXY)
        proxies = deployment.proxy.proxies_for_domain(
            fig.asn("Z"), deployment.members(), deployment.adopting_asns())
        proxy_domains = {fig.network.node(p).domain_id for p in proxies}
        assert proxy_domains == {fig.asn("B"), fig.asn("C")}

    def test_without_proxy_path_exits_at_a(self):
        fig, orch, deployment = self.build(EgressPolicy.EXIT_IMMEDIATELY)
        trace = deployment.send("host_a", "host_z")
        assert trace.delivered
        assert fig.network.node(trace.egress_router).domain_id == fig.asn("A")
        # The legacy tail crosses M and N.
        assert fig.asn("M") in trace.domain_path()

    def test_with_proxy_path_rides_vnbone(self):
        fig, orch, deployment = self.build(EgressPolicy.PROXY)
        trace = deployment.send("host_a", "host_z")
        assert trace.delivered
        egress_domain = fig.network.node(trace.egress_router).domain_id
        assert egress_domain in (fig.asn("B"), fig.asn("C"))
        # The legacy chain M - N is avoided entirely.
        assert fig.asn("M") not in trace.domain_path()
        assert fig.asn("N") not in trace.domain_path()

    def test_proxy_shortens_tail(self):
        fig, _, naive = self.build(EgressPolicy.EXIT_IMMEDIATELY)
        naive_tail = vn_tail_length(fig.network,
                                    naive.send("host_a", "host_z"))
        fig2, _, proxied = self.build(EgressPolicy.PROXY)
        proxy_tail = vn_tail_length(fig2.network,
                                    proxied.send("host_a", "host_z"))
        assert proxy_tail < naive_tail

    def test_uncovered_domains_fall_back(self):
        """Destination domains no proxy covers still work via the
        exit-immediately fallback (N is 2 AS hops from every member)."""
        fig, orch, deployment = self.build(EgressPolicy.PROXY, threshold=1)
        fig.network.add_host("host_n", fig.asn("N"), "n1")
        deployment.rebuild()  # the new host's route must converge
        trace = deployment.send("host_a", "host_n")
        assert trace.delivered
