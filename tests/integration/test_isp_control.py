"""Section 3.1's balance of user choice and ISP control.

"ISPs can, to some extent, control the process of redirection through
policy choices in their inter-domain routing.  For example, ISP W
might, based on peering policies, choose to route anycast packets to
ISP X before Y."  And crucially: "through peering policies, ISPs can
control but not *gate* deployment."
"""

import pytest

from repro.net import Domain, Network, Prefix, Relationship
from repro.bgp.routes import LOCAL_PREF_CUSTOMER
from repro.core.orchestrator import Orchestrator
from repro.anycast import GlobalAnycast


def w_between_x_and_y():
    """Client domain Z behind transit W, which connects to both X and Y.

    X and Y are equidistant from W, so with no policy the tie-break
    decides; W's policy can steer its anycast traffic either way.
    """
    net = Network()
    for asn, name in enumerate(["W", "X", "Y", "Z"], start=1):
        net.add_domain(Domain(asn=asn, name=name,
                              prefix=Prefix.parse(f"10.{asn}.0.0/16")))
        net.add_router(f"{name.lower()}1", asn, is_border=True)
        net.add_router(f"{name.lower()}2", asn)
        net.add_link(f"{name.lower()}1", f"{name.lower()}2")
    net.connect_domains(2, 1, "x1", "w1", Relationship.PROVIDER)  # X under W
    net.connect_domains(3, 1, "y1", "w1", Relationship.PROVIDER)  # Y under W
    net.connect_domains(4, 1, "z1", "w1", Relationship.PROVIDER)  # Z under W
    net.add_host("c", 4, "z2")
    return net


@pytest.fixture
def deployed():
    net = w_between_x_and_y()
    orch = Orchestrator(net)
    orch.converge()
    scheme = GlobalAnycast(orch, "ipv8")
    scheme.add_member("x2")
    scheme.add_member("y2")
    orch.reconverge()
    return net, orch, scheme


class TestRedirectionSteering:
    def test_default_tiebreak_picks_x(self, deployed):
        net, orch, scheme = deployed
        member = scheme.resolve("c")
        assert net.node(member).domain_id == 2  # lower ASN tie-break

    def test_w_can_prefer_y(self, deployed):
        net, orch, scheme = deployed
        net.domains[1].set_anycast_preference(3, LOCAL_PREF_CUSTOMER + 50)
        orch.bgp.reannounce(2)
        orch.bgp.reannounce(3)
        orch.reconverge()
        member = scheme.resolve("c")
        assert net.node(member).domain_id == 3

    def test_preference_is_per_domain(self, deployed):
        """W's policy steers traffic W carries; X's own clients are
        untouched (control is shared and decentralized)."""
        net, orch, scheme = deployed
        net.domains[1].set_anycast_preference(3, LOCAL_PREF_CUSTOMER + 50)
        orch.bgp.reannounce(2)
        orch.bgp.reannounce(3)
        orch.reconverge()
        assert scheme.resolve("x1") == "x2"  # X still serves itself

    def test_clear_preferences_restores_default(self, deployed):
        net, orch, scheme = deployed
        net.domains[1].set_anycast_preference(3, LOCAL_PREF_CUSTOMER + 50)
        orch.bgp.reannounce(3)
        orch.reconverge()
        net.domains[1].clear_anycast_preferences()
        orch.bgp.reannounce(2)
        orch.bgp.reannounce(3)
        orch.reconverge()
        member = scheme.resolve("c")
        assert net.node(member).domain_id == 2


class TestControlCannotGate:
    def test_depreffing_does_not_block_access(self, deployed):
        """W can make Y's route unattractive but cannot deny its
        customers IPvN: depreffing both origins still leaves a route."""
        net, orch, scheme = deployed
        net.domains[1].set_anycast_preference(2, 5)
        net.domains[1].set_anycast_preference(3, 1)
        orch.bgp.reannounce(2)
        orch.bgp.reannounce(3)
        orch.reconverge()
        member = scheme.resolve("c")
        assert member is not None
        assert net.node(member).domain_id == 2  # pref 5 beats pref 1

    def test_unicast_routes_unaffected(self, deployed):
        net, orch, scheme = deployed
        net.domains[1].set_anycast_preference(3, 500)
        orch.bgp.reannounce(3)
        orch.reconverge()
        from repro.net import ipv4_packet

        trace = orch.forward(ipv4_packet(net.node("c").ipv4,
                                         net.node("x2").ipv4), "c")
        assert trace.delivered
        assert trace.domain_path() == [4, 1, 2]
