"""Property-based invariants over randomly generated internetworks.

These are the system-level guarantees the mechanisms rest on:

* BGP paths are valley-free under Gao-Rexford policy;
* the data plane follows the control plane (a forwarded packet's
  AS-level path equals the source AS's chosen BGP path);
* option-1 anycast delivers to a member whose domain BGP selected;
* IPv4 reachability is total on generated topologies (no blackholes
  from generation or installation bugs).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.orchestrator import Orchestrator
from repro.net import Relationship, ipv4_packet
from repro.anycast import GlobalAnycast
from repro.topogen import InternetSpec, generate_internet

internet_specs = st.builds(
    InternetSpec,
    n_tier1=st.integers(min_value=1, max_value=3),
    n_tier2=st.integers(min_value=1, max_value=4),
    n_stub=st.integers(min_value=2, max_value=6),
    hosts_per_stub=st.just(1),
    seed=st.integers(min_value=0, max_value=10_000),
)

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def is_valley_free(network, as_path):
    """Check the classic valley-free property of an AS path.

    Walking from the first AS towards the origin, the sequence of
    relationship steps must match customer->provider* (peer)?
    provider->customer* — i.e. uphill, at most one peer step, downhill.
    """
    phases = []
    for a, b in zip(as_path, as_path[1:]):
        rel = network.domains[a].relationship_with(b)
        if rel is None:
            return False
        phases.append(rel)
    # as_path runs from the selecting AS towards the origin; each step's
    # relationship is "what b is to a".  Uphill = towards providers.
    seen_peer_or_down = False
    for rel in phases:
        if rel is Relationship.PROVIDER:
            if seen_peer_or_down:
                return False
        else:
            seen_peer_or_down = True
    # At most one PEER step overall (peers don't chain).
    return sum(1 for rel in phases if rel is Relationship.PEER) <= 1


@SETTINGS
@given(spec=internet_specs)
def test_bgp_paths_are_valley_free(spec):
    generated = generate_internet(spec)
    orch = Orchestrator(generated.network)
    orch.converge()
    for asn, speaker in orch.bgp.speakers.items():
        for prefix, route in speaker.loc_rib.items():
            if route.originated:
                continue
            assert is_valley_free(generated.network, route.as_path), (
                asn, str(prefix), route.as_path)


@SETTINGS
@given(spec=internet_specs, data=st.data())
def test_forwarding_follows_bgp_path(spec, data):
    generated = generate_internet(spec)
    orch = Orchestrator(generated.network)
    orch.converge()
    hosts = generated.hosts
    if len(hosts) < 2:
        return
    src = data.draw(st.sampled_from(hosts))
    dst = data.draw(st.sampled_from([h for h in hosts if h != src]))
    net = generated.network
    trace = orch.forward(ipv4_packet(net.node(src).ipv4, net.node(dst).ipv4),
                         src)
    assert trace.delivered, (src, dst, trace)
    src_asn = net.node(src).domain_id
    dst_asn = net.node(dst).domain_id
    expected = (src_asn,)
    if src_asn != dst_asn:
        route = orch.bgp.speaker(src_asn).best_route(net.domains[dst_asn].prefix)
        assert route is not None
        expected = (src_asn,) + route.as_path
    assert tuple(trace.domain_path()) == expected


@SETTINGS
@given(spec=internet_specs, data=st.data())
def test_option1_anycast_matches_bgp_selection(spec, data):
    generated = generate_internet(spec)
    orch = Orchestrator(generated.network)
    orch.converge()
    scheme = GlobalAnycast(orch, "prop")
    member_domains = data.draw(st.sets(
        st.sampled_from(generated.all_asns()), min_size=1, max_size=3))
    for asn in sorted(member_domains):
        router = sorted(generated.network.domains[asn].routers)[0]
        scheme.add_member(router)
    orch.reconverge()
    from repro.net.address import Prefix

    anycast_prefix = Prefix.host(scheme.address)
    for host in generated.hosts:
        host_asn = generated.network.node(host).domain_id
        member = scheme.resolve(host)
        if host_asn in member_domains:
            assert member is not None
            assert generated.network.node(member).domain_id == host_asn
            continue
        route = orch.bgp.speaker(host_asn).best_route(anycast_prefix)
        if route is None:
            assert member is None
        else:
            assert member is not None
            assert (generated.network.node(member).domain_id
                    == route.origin_asn)


@SETTINGS
@given(spec=internet_specs)
def test_generated_internets_fully_reachable(spec):
    generated = generate_internet(spec)
    orch = Orchestrator(generated.network)
    orch.converge()
    net = generated.network
    hosts = generated.hosts
    for src in hosts[:3]:
        for dst in hosts:
            if src == dst:
                continue
            trace = orch.forward(
                ipv4_packet(net.node(src).ipv4, net.node(dst).ipv4), src)
            assert trace.delivered, (src, dst, trace.drop_reason)
