"""Cross-feature integration: serialization with live deployments,
mobility, and the CLI save/load path."""

import pytest

from repro.core.evolution import EvolvableInternet
from repro.net.serialize import load_network, network_from_dict, \
    network_to_dict, save_network
from repro.topogen import InternetSpec
from repro.vnbone.mobility import MobilityService


def build_internet(seed=61):
    return EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=3, n_stub=5, hosts_per_stub=1,
                     seed=seed), seed=seed)


class TestDeploymentOnReloadedTopology:
    def test_reloaded_topology_supports_full_deployment(self, tmp_path):
        original = build_internet()
        path = tmp_path / "topo.json"
        save_network(original.network, path)

        reloaded = EvolvableInternet(load_network(path))
        deployment = reloaded.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        deployment.rebuild()
        report = reloaded.reachability(8, sample=15)
        assert report.delivery_ratio == 1.0, report.failures

    def test_same_deployment_same_measurements(self, tmp_path):
        """Identical deployments on original and reloaded topologies
        produce identical reachability numbers."""
        runs = []
        path = None
        for use_reload in (False, True):
            if not use_reload:
                internet = build_internet()
                path = tmp_path / "topo.json"
                save_network(internet.network, path)
            else:
                internet = EvolvableInternet(load_network(path))
            deployment = internet.new_deployment(version=8, scheme="default")
            deployment.deploy(deployment.scheme.default_asn)
            deployment.deploy(internet.stub_asns()[0])
            deployment.rebuild()
            report = internet.reachability(8, sample=20, seed=1)
            runs.append((report.delivery_ratio, report.mean_stretch))
        assert runs[0] == runs[1]


class TestMobilityThenSerialize:
    def test_moved_host_roundtrips(self):
        internet = build_internet()
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        deployment.rebuild()
        mobility = MobilityService(deployment)
        mobile = internet.hosts()[0]
        mobility.enable(mobile)
        target = next(a for a in internet.stub_asns()
                      if a != internet.network.node(mobile).domain_id)
        access = sorted(internet.network.domains[target].routers)[0]
        mobility.move(mobile, target, access)

        snapshot = network_to_dict(internet.network)
        clone = network_from_dict(snapshot)
        moved = clone.node(mobile)
        assert moved.domain_id == target
        assert moved.access_router == access
        assert moved.ipv4 == internet.network.node(mobile).ipv4

    def test_address_index_consistent_after_move_and_reload(self):
        internet = build_internet()
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        deployment.rebuild()
        mobility = MobilityService(deployment)
        mobile = internet.hosts()[0]
        mobility.enable(mobile)
        target = next(a for a in internet.stub_asns()
                      if a != internet.network.node(mobile).domain_id)
        access = sorted(internet.network.domains[target].routers)[0]
        mobility.move(mobile, target, access)
        clone = network_from_dict(network_to_dict(internet.network))
        for node_id, node in clone.nodes.items():
            assert clone.node_by_ipv4(node.ipv4).node_id == node_id
