"""Property-based invariants for the IPvN service extensions.

Multicast: for arbitrary group memberships, one send reaches exactly
the joined receivers, never costs more than unicast fan-out, and
non-receivers never hear the group.

Mobility: through arbitrary move sequences, the pinned identity stays
reachable from an arbitrary correspondent, and every abandoned locator
is dead.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec
from repro.vnbone.mobility import MobilityService
from repro.vnbone.multicast import enable_multicast

SETTINGS = settings(max_examples=8, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def build_internet(seed):
    return EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=3, n_stub=6, hosts_per_stub=2,
                     seed=seed), seed=seed)


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=500), data=st.data())
def test_multicast_reaches_exactly_the_joined_set(seed, data):
    internet = build_internet(seed)
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    deployment.rebuild()
    service = enable_multicast(deployment)
    hosts = internet.hosts()
    source = data.draw(st.sampled_from(hosts))
    receivers = data.draw(st.sets(st.sampled_from(hosts), min_size=1,
                                  max_size=6))
    group = service.create_group()
    for host in sorted(receivers):
        service.join(group, host)
    service.rebuild()
    trace = service.send(source, group)
    assert trace.delivered_to == receivers, (
        source, receivers - trace.delivered_to, trace.delivered_to - receivers)
    unicast_cost, _ = service.unicast_equivalent_cost(source, group)
    assert trace.transmissions <= unicast_cost


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=500), data=st.data())
def test_mobility_identity_survives_arbitrary_moves(seed, data):
    internet = build_internet(seed)
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    deployment.rebuild()
    mobility = MobilityService(deployment)
    hosts = internet.hosts()
    mobile = data.draw(st.sampled_from(hosts))
    corr = data.draw(st.sampled_from([h for h in hosts if h != mobile]))
    identity = mobility.enable(mobile)
    moves = data.draw(st.lists(
        st.sampled_from(sorted(internet.network.domains)), min_size=1,
        max_size=3))
    records = []
    for target in moves:
        if internet.network.node(mobile).domain_id == target:
            continue
        access = sorted(internet.network.domains[target].routers)[0]
        records.append(mobility.move(mobile, target, access))
    trace = mobility.reach(corr, mobile)
    assert trace.delivered and trace.delivered_to == mobile
    assert internet.network.node(mobile).vn_address(8) == identity
    for record in records:
        legacy = mobility.ipv4_reach_old_locator(corr, record)
        assert legacy.delivered_to != mobile
