"""The paper's central requirement, as an invariant:

    "All clients can use IPvN if they so choose, regardless of whether
    their ISP deploys IPvN or assists their clients in accessing IPvN."

These tests sweep schemes, deployment patterns, and seeds on generated
internetworks and assert 100% IPvN delivery between all sampled host
pairs whenever at least one ISP has deployed.
"""

import pytest

from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec
from repro.vnbone import EgressPolicy, adoption_rng


def build_internet(seed, igp_overrides=None):
    spec = InternetSpec(n_tier1=2, n_tier2=4, n_stub=6, hosts_per_stub=1,
                        seed=seed)
    return EvolvableInternet.generate(spec, seed=seed,
                                      igp_overrides=igp_overrides)


class TestSingleIspDeployment:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_default_scheme_one_tier1(self, seed):
        internet = build_internet(seed)
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        deployment.rebuild()
        report = internet.reachability(8, sample=30, seed=seed)
        assert report.delivery_ratio == 1.0, report.failures

    @pytest.mark.parametrize("seed", [0, 1])
    def test_global_scheme_one_tier2(self, seed):
        internet = build_internet(seed)
        deployment = internet.new_deployment(version=8, scheme="global")
        tier2 = sorted(asn for asn, d in internet.network.domains.items()
                       if d.tier == 2)
        deployment.deploy(tier2[0])
        deployment.rebuild()
        report = internet.reachability(8, sample=30, seed=seed)
        assert report.delivery_ratio == 1.0, report.failures

    def test_single_stub_deployment_still_universal(self):
        """Even a lone stub ISP deploying gives *everyone* access."""
        internet = build_internet(3)
        deployment = internet.new_deployment(version=8, scheme="global")
        deployment.deploy(internet.stub_asns()[0])
        deployment.rebuild()
        report = internet.reachability(8, sample=30)
        assert report.delivery_ratio == 1.0, report.failures


class TestPartialIntraIspDeployment:
    """Assumption A1: only a subset of an ISP's routers run IPvN."""

    @pytest.mark.parametrize("fraction", [0.25, 0.5])
    def test_fractional_deployment(self, fraction):
        internet = build_internet(4)
        deployment = internet.new_deployment(version=8, scheme="default")
        adopter = deployment.scheme.default_asn
        deployment.deploy(adopter, fraction=fraction,
                          rng=adoption_rng(adopter))
        deployment.rebuild()
        report = internet.reachability(8, sample=30)
        assert report.delivery_ratio == 1.0, report.failures


class TestMixedIgps:
    def test_distance_vector_domains_participate(self):
        """Universal access must not depend on the IGP flavor
        (distance-vector domains lack member discovery; construction
        falls back to anycast bootstrap)."""
        overrides = {asn: "distancevector" for asn in (1, 3, 5)}
        internet = build_internet(5, igp_overrides=overrides)
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        deployment.deploy(3)
        deployment.rebuild()
        report = internet.reachability(8, sample=30)
        assert report.delivery_ratio == 1.0, report.failures


class TestSpreadImprovesButNeverBreaks:
    def test_reachability_stays_total_as_deployment_spreads(self):
        internet = build_internet(6)
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        deployment.rebuild()
        ratios = []
        stretches = []
        for asn in internet.stub_asns()[:4]:
            deployment.deploy(asn)
            deployment.rebuild()
            report = internet.reachability(8, sample=25)
            ratios.append(report.delivery_ratio)
            stretches.append(report.mean_stretch)
        assert all(r == 1.0 for r in ratios)
        assert all(s >= 1.0 for s in stretches)

    def test_egress_policies_all_preserve_access(self):
        for policy in (EgressPolicy.EXIT_IMMEDIATELY,
                       EgressPolicy.BGP_INFORMED, EgressPolicy.PROXY):
            internet = build_internet(7)
            deployment = internet.new_deployment(version=8, scheme="default",
                                                 egress_policy=policy)
            deployment.deploy(deployment.scheme.default_asn)
            deployment.rebuild()
            report = internet.reachability(8, sample=20)
            assert report.delivery_ratio == 1.0, (policy, report.failures)
