"""Delay-weighted path accounting on forwarding traces.

Every physical hop adds its link's ``delay`` to the walk's cumulative
latency; hop records carry the running total, render it exactly once
(``HopRecord.format()`` is the single rendering), and serialize it
through the ``to_dict()`` round-trip contract.
"""

import json

from repro.net import Domain, Network, Prefix, ipv4_packet
from repro.net.forwarding import ForwardingEngine
from repro.net.node import FibEntry, RouteSource


def delay_line(delays=(2.0, 3.0)):
    """r0 - r1 - ... with explicit link delays and static routes to
    the last router."""
    net = Network()
    net.add_domain(Domain(asn=1, name="one",
                          prefix=Prefix.parse("10.1.0.0/16")))
    n = len(delays) + 1
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i, delay in enumerate(delays):
        net.add_link(f"r{i}", f"r{i + 1}", delay=delay)
    last = net.node(f"r{n - 1}")
    for i in range(n - 1):
        net.node(f"r{i}").fib4.install(FibEntry(
            prefix=Prefix.host(last.ipv4), next_hop=f"r{i + 1}",
            source=RouteSource.STATIC))
    return net


def walk(net, src="r0", dst="r2"):
    engine = ForwardingEngine(net)
    packet = ipv4_packet(net.node(src).ipv4, net.node(dst).ipv4)
    return engine.forward(packet, src)


class TestTraceLatency:
    def test_latency_accumulates_link_delays(self):
        trace = walk(delay_line((2.0, 3.0)))
        assert trace.delivered
        assert trace.latency == 5.0
        # Forward records are written after the link is crossed, so each
        # carries the cumulative latency including the hop just taken.
        assert [hop.latency for hop in trace.hops] == [2.0, 5.0, 5.0]

    def test_undelivered_walk_keeps_partial_latency(self):
        net = delay_line((2.0, 3.0))
        net.link_between("r1", "r2").fail()
        trace = walk(net)
        assert not trace.delivered
        # The dead link's delay is never paid.
        assert trace.latency == 2.0

    def test_hop_format_annotates_latency_exactly_when_nonzero(self):
        trace = walk(delay_line((2.0, 3.0)))
        rendered = [hop.format() for hop in trace.hops]
        assert rendered[0].endswith("[lat=2]")
        assert rendered[1].endswith("[lat=5]")
        assert rendered[2].endswith("[lat=5]")

    def test_zero_delay_links_render_like_pre_v3_hops(self):
        trace = walk(delay_line((0.0, 0.0)))
        assert trace.latency == 0.0
        for hop in trace.hops:
            assert "[lat=" not in hop.format()

    def test_to_dict_round_trips_latency(self):
        doc = walk(delay_line((2.0, 3.0))).to_dict()
        assert doc["latency"] == 5.0
        assert [hop["latency"] for hop in doc["hops"]] == [2.0, 5.0, 5.0]
        dumped = json.dumps(doc, sort_keys=True)
        assert json.dumps(json.loads(dumped), sort_keys=True) == dumped
