"""The probe engine: plan validation, pull semantics, fault composition.

The engine must fire from scheduler clock advances only (never queued
events), stamp each round with its own tick time even across long
clock jumps, and record loss as undelivered samples rather than
raising.
"""

import pytest

from repro.measure import (DelayOracle, ProbeEngine, ProbePlan, ProbeTarget,
                           delay_tree)
from repro.net import Domain, Network, Prefix, ipv4
from repro.net.errors import MeasureError
from repro.net.forwarding import ForwardingEngine
from repro.net.node import FibEntry, RouteSource
from repro.net.simulator import EventScheduler


def probe_net(delays=(2.0, 3.0)):
    net = Network()
    net.add_domain(Domain(asn=1, name="one",
                          prefix=Prefix.parse("10.1.0.0/16")))
    n = len(delays) + 1
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i, delay in enumerate(delays):
        net.add_link(f"r{i}", f"r{i + 1}", delay=delay)
    last = net.node(f"r{n - 1}")
    for i in range(n - 1):
        net.node(f"r{i}").fib4.install(FibEntry(
            prefix=Prefix.host(last.ipv4), next_hop=f"r{i + 1}",
            source=RouteSource.STATIC))
    return net


def unicast_plan(net, dst="r2", **overrides):
    kwargs = dict(vantages=("r0",),
                  targets=(ProbeTarget(name=dst, dst=net.node(dst).ipv4),),
                  interval=5.0, rounds=3)
    kwargs.update(overrides)
    return ProbePlan(**kwargs)


def make_engine(net, plan):
    return ProbeEngine(EventScheduler(), ForwardingEngine(net), net, plan)


class TestPlanValidation:
    def test_empty_vantages_rejected(self):
        with pytest.raises(MeasureError):
            ProbePlan(vantages=(), targets=(ProbeTarget("x", ipv4("1.2.3.4")),))

    def test_duplicate_vantages_rejected(self):
        with pytest.raises(MeasureError):
            ProbePlan(vantages=("r0", "r0"),
                      targets=(ProbeTarget("x", ipv4("1.2.3.4")),))

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(MeasureError):
            ProbePlan(vantages=("r0",),
                      targets=(ProbeTarget("x", ipv4("1.2.3.4")),),
                      interval=0.0)

    def test_unknown_target_kind_rejected(self):
        with pytest.raises(MeasureError):
            ProbePlan(vantages=("r0",),
                      targets=(ProbeTarget("x", ipv4("1.2.3.4"),
                                           kind="broadcast"),))

    def test_unknown_vantage_rejected_against_network(self):
        net = probe_net()
        with pytest.raises(MeasureError):
            make_engine(net, unicast_plan(net, vantages=("nope",)))

    def test_unicast_target_must_be_a_node_id(self):
        net = probe_net()
        plan = ProbePlan(vantages=("r0",),
                         targets=(ProbeTarget("ghost", ipv4("99.0.0.1")),))
        with pytest.raises(MeasureError):
            make_engine(net, plan)

    def test_anycast_targets_need_a_replica_callback(self):
        net = probe_net()
        plan = ProbePlan(vantages=("r0",),
                         targets=(ProbeTarget("svc", ipv4("99.0.0.1"),
                                              kind="anycast"),))
        with pytest.raises(MeasureError):
            make_engine(net, plan)


class TestPullSemantics:
    def test_round_zero_fires_at_arm_time(self):
        net = probe_net()
        engine = make_engine(net, unicast_plan(net))
        engine.arm()
        assert [s.t for s in engine.samples] == [0.0]

    def test_rounds_fire_as_the_clock_reaches_their_ticks(self):
        net = probe_net()
        engine = make_engine(net, unicast_plan(net))
        engine.arm()
        engine.scheduler.run_until(5.0)
        assert [s.t for s in engine.samples] == [0.0, 5.0]
        engine.finish()
        assert [s.t for s in engine.samples] == [0.0, 5.0, 10.0]

    def test_long_clock_jump_fires_every_due_round_in_order(self):
        net = probe_net()
        engine = make_engine(net, unicast_plan(net))
        engine.arm()
        engine.scheduler.run_until(40.0)
        assert [s.t for s in engine.samples] == [0.0, 5.0, 10.0]
        assert [s.round for s in engine.samples] == [0, 1, 2]

    def test_ticks_are_relative_to_arm_time(self):
        net = probe_net()
        engine = make_engine(net, unicast_plan(net, start=1.0))
        engine.scheduler.run_until(7.0)
        engine.arm()
        engine.finish()
        assert [s.t for s in engine.samples] == [8.0, 13.0, 18.0]

    def test_rtt_is_twice_the_one_way_latency(self):
        net = probe_net((2.0, 3.0))
        engine = make_engine(net, unicast_plan(net))
        engine.arm()
        engine.finish()
        for sample in engine.samples:
            assert sample.delivered
            assert sample.latency == 5.0
            assert sample.rtt == 10.0
            assert sample.best_replica == "r2"
            assert sample.best_rtt == 10.0

    def test_double_arm_and_unarmed_finish_raise(self):
        net = probe_net()
        engine = make_engine(net, unicast_plan(net))
        with pytest.raises(MeasureError):
            engine.finish()
        engine.arm()
        with pytest.raises(MeasureError):
            engine.arm()


class TestFaultComposition:
    def test_loss_is_a_gap_not_an_exception(self):
        net = probe_net()
        net.link_between("r1", "r2").fail()
        engine = make_engine(net, unicast_plan(net))
        engine.arm()
        engine.finish()
        assert len(engine.samples) == 3
        for sample in engine.samples:
            assert not sample.delivered
            assert sample.rtt is None
            assert sample.replica is None

    def test_series_counts_delivered_and_lost(self):
        net = probe_net()
        net.link_between("r1", "r2").fail()
        engine = make_engine(net, unicast_plan(net))
        engine.arm()
        engine.finish()
        series = engine.series()
        assert series["probes"] == 3
        assert series["delivered"] == 0
        assert series["lost"] == 3
        assert len(series["samples"]) == 3


class TestDelayOracle:
    def test_delay_tree_walks_delay_not_cost(self):
        net = probe_net((2.0, 3.0))
        assert delay_tree(net, "r0") == {"r0": 0.0, "r1": 2.0, "r2": 5.0}

    def test_down_nodes_do_not_carry_paths(self):
        net = probe_net((2.0, 3.0))
        net.crash_node("r1")
        assert delay_tree(net, "r0") == {"r0": 0.0}
        assert delay_tree(net, "r1") == {}

    def test_best_replica_ties_break_to_smallest_id(self):
        net = Network()
        net.add_domain(Domain(asn=1, name="one",
                              prefix=Prefix.parse("10.1.0.0/16")))
        for node_id in ("hub", "a", "b"):
            net.add_router(node_id, 1)
        net.add_link("hub", "a", delay=4.0)
        net.add_link("hub", "b", delay=4.0)
        oracle = DelayOracle(net)
        assert oracle.best_replica("hub", ["b", "a"]) == ("a", 4.0)

    def test_memo_invalidates_on_topology_change(self):
        net = probe_net((2.0, 3.0))
        oracle = DelayOracle(net)
        assert oracle.delay("r0", "r2") == 5.0
        net.link_between("r1", "r2").fail()
        assert oracle.delay("r0", "r2") is None
