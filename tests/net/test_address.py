"""Unit tests for addresses and prefixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.address import (SELF_ADDRESS_FLAG, IPv4Address, Prefix, VNAddress,
                               ipv4, prefix)
from repro.net.errors import AddressError


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address.parse("10.0.0.1").value == 0x0A000001

    def test_str_roundtrip(self):
        assert str(IPv4Address.parse("192.168.1.254")) == "192.168.1.254"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_parse_str_roundtrip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.parse(str(address)) == address

    def test_rejects_negative(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_rejects_too_large(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    @pytest.mark.parametrize("text", ["10.0.0", "10.0.0.0.0", "a.b.c.d",
                                      "256.0.0.1", "-1.0.0.0", ""])
    def test_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            IPv4Address.parse(text)

    def test_ordering_follows_value(self):
        assert IPv4Address(1) < IPv4Address(2)

    def test_hashable(self):
        assert len({IPv4Address(1), IPv4Address(1), IPv4Address(2)}) == 2

    def test_ipv4_helper_accepts_both(self):
        assert ipv4("10.0.0.1") == ipv4(0x0A000001)


class TestVNAddress:
    def test_self_assigned_sets_flag(self):
        address = VNAddress.self_assigned(ipv4("10.1.2.3"))
        assert address.is_self_assigned
        assert address.value & SELF_ADDRESS_FLAG

    def test_embedded_ipv4_roundtrip(self):
        original = ipv4("172.16.9.8")
        assert VNAddress.self_assigned(original).embedded_ipv4() == original

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_embedding_roundtrip_property(self, value):
        original = IPv4Address(value)
        assert VNAddress.self_assigned(original).embedded_ipv4() == original

    def test_native_address_has_no_embedded_ipv4(self):
        with pytest.raises(AddressError):
            VNAddress(42).embedded_ipv4()

    def test_version_floor(self):
        with pytest.raises(AddressError):
            VNAddress(1, version=4)

    def test_default_version_is_8(self):
        assert VNAddress(1).version == 8

    def test_str_marks_kind(self):
        assert "/self" in str(VNAddress.self_assigned(ipv4("1.2.3.4")))
        assert "/native" in str(VNAddress(7))


class TestPrefix:
    def test_parse(self):
        pfx = prefix("10.0.0.0/8")
        assert pfx.plen == 8
        assert pfx.address == ipv4("10.0.0.0")

    def test_canonicalizes_host_bits(self):
        pfx = Prefix(ipv4("10.1.2.3"), 8)
        assert pfx.address == ipv4("10.0.0.0")

    def test_contains_address(self):
        assert prefix("10.0.0.0/8").contains(ipv4("10.255.0.1"))
        assert not prefix("10.0.0.0/8").contains(ipv4("11.0.0.1"))

    def test_contains_more_specific_prefix(self):
        assert prefix("10.0.0.0/8").contains(prefix("10.1.0.0/16"))
        assert not prefix("10.1.0.0/16").contains(prefix("10.0.0.0/8"))

    def test_contains_rejects_cross_family(self):
        assert not prefix("10.0.0.0/8").contains(VNAddress(0x0A000001))

    def test_host_route(self):
        assert Prefix.host(ipv4("1.2.3.4")).plen == 32
        assert Prefix.host(VNAddress(5)).plen == 64

    def test_zero_length_prefix_contains_everything(self):
        default = Prefix(IPv4Address(0), 0)
        assert default.contains(ipv4("255.255.255.255"))

    def test_rejects_bad_plen(self):
        with pytest.raises(AddressError):
            Prefix(ipv4("10.0.0.0"), 33)

    @pytest.mark.parametrize("text", ["10.0.0.0", "10.0.0.0/x", "/8"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            Prefix.parse(text)

    def test_key_bits_msb_first(self):
        bits = list(prefix("128.0.0.0/2").key_bits())
        assert bits == [1, 0]

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=32))
    def test_canonical_prefix_contains_own_network(self, value, plen):
        pfx = Prefix(IPv4Address(value), plen)
        assert pfx.contains(pfx.address)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=32))
    def test_mask_has_plen_leading_ones(self, value, plen):
        pfx = Prefix(IPv4Address(value), plen)
        assert bin(pfx.mask()).count("1") == plen

    def test_str(self):
        assert str(prefix("10.2.0.0/16")) == "10.2.0.0/16"

    def test_ordering_deterministic(self):
        prefixes = [prefix("10.2.0.0/16"), prefix("10.1.0.0/16")]
        assert sorted(prefixes)[0] == prefix("10.1.0.0/16")

    def test_sort_key_matches_str(self):
        # The BGP install path used to sort on str(prefix) per call;
        # sort_key() caches that string, so the install order must be
        # the old str-keyed order exactly.
        prefixes = [prefix("10.2.0.0/16"), prefix("10.10.0.0/16"),
                    prefix("10.1.0.0/16"), prefix("192.168.0.0/24"),
                    prefix("2.0.0.0/8"), Prefix.host(ipv4("240.0.0.1")),
                    prefix("10.2.0.0/24")]
        assert (sorted(prefixes, key=Prefix.sort_key)
                == sorted(prefixes, key=str))

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**32 - 1),
                              st.integers(min_value=0, max_value=32)),
                    max_size=20))
    def test_sort_key_order_property(self, pairs):
        prefixes = [Prefix(IPv4Address(value), plen) for value, plen in pairs]
        assert (sorted(prefixes, key=Prefix.sort_key)
                == sorted(prefixes, key=str))

    def test_sort_key_is_cached(self):
        pfx = prefix("10.0.0.0/8")
        assert pfx.sort_key() == "10.0.0.0/8"
        assert pfx.sort_key() is pfx.sort_key()
