"""Unit tests for domains (ISPs) and relationships."""

import pytest

from repro.net.address import Prefix, ipv4
from repro.net.domain import Domain, Relationship
from repro.net.errors import AddressError, DeploymentError, TopologyError


def make_domain(asn=1, plen=24):
    return Domain(asn=asn, name=f"as{asn}",
                  prefix=Prefix(ipv4(f"10.{asn}.{0}.0") if plen == 24
                                else ipv4(f"10.{asn}.0.0"), plen))


class TestAllocation:
    def test_sequential_allocation(self):
        domain = make_domain()
        first = domain.allocate_ipv4()
        second = domain.allocate_ipv4()
        assert first != second
        assert domain.prefix.contains(first)
        assert domain.prefix.contains(second)

    def test_exhaustion(self):
        domain = Domain(asn=1, name="tiny", prefix=Prefix(ipv4("10.0.0.0"), 30))
        for _ in range(3):
            domain.allocate_ipv4()
        with pytest.raises(AddressError):
            domain.allocate_ipv4()

    def test_reserve_specific_address(self):
        domain = make_domain()
        target = ipv4("10.1.0.200")
        assert domain.reserve_ipv4(target) == target
        with pytest.raises(AddressError):
            domain.reserve_ipv4(target)

    def test_reserve_rejects_foreign_address(self):
        with pytest.raises(AddressError):
            make_domain().reserve_ipv4(ipv4("11.0.0.1"))

    def test_allocation_skips_reserved(self):
        domain = Domain(asn=1, name="tiny", prefix=Prefix(ipv4("10.0.0.0"), 30))
        domain.reserve_ipv4(ipv4("10.0.0.1"))
        assert domain.allocate_ipv4() == ipv4("10.0.0.2")


class TestRelationships:
    def test_reverse(self):
        assert Relationship.CUSTOMER.reverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.reverse() is Relationship.CUSTOMER
        assert Relationship.PEER.reverse() is Relationship.PEER

    def test_set_and_query(self):
        domain = make_domain()
        domain.set_relationship(2, Relationship.CUSTOMER)
        domain.set_relationship(3, Relationship.PEER)
        domain.set_relationship(4, Relationship.PROVIDER)
        assert domain.customers() == [2]
        assert domain.peers() == [3]
        assert domain.providers() == [4]
        assert sorted(domain.neighbor_asns()) == [2, 3, 4]
        assert domain.relationship_with(9) is None

    def test_no_self_relationship(self):
        with pytest.raises(TopologyError):
            make_domain().set_relationship(1, Relationship.PEER)

    def test_positive_asn_required(self):
        with pytest.raises(TopologyError):
            Domain(asn=0, name="bad", prefix=Prefix(ipv4("10.0.0.0"), 16))


class TestDeploymentRecords:
    def test_deploy_version_subset(self):
        domain = make_domain()
        domain.routers.update({"r1", "r2", "r3"})
        domain.deploy_version(8, {"r1", "r2"})
        assert domain.deploys(8)
        assert domain.vn_router_ids(8) == {"r1", "r2"}
        assert not domain.deploys(9)

    def test_deploy_foreign_router_rejected(self):
        domain = make_domain()
        domain.routers.add("r1")
        with pytest.raises(DeploymentError):
            domain.deploy_version(8, {"r1", "ghost"})

    def test_deploy_needs_routers(self):
        domain = make_domain()
        with pytest.raises(DeploymentError):
            domain.deploy_version(8, set())

    def test_deploy_accumulates(self):
        domain = make_domain()
        domain.routers.update({"r1", "r2"})
        domain.deploy_version(8, {"r1"})
        domain.deploy_version(8, {"r2"})
        assert domain.vn_router_ids(8) == {"r1", "r2"}

    def test_undeploy(self):
        domain = make_domain()
        domain.routers.add("r1")
        domain.deploy_version(8, {"r1"})
        domain.undeploy_version(8)
        assert not domain.deploys(8)
        assert domain.vn_router_ids(8) == set()

    def test_vn_router_ids_returns_copy(self):
        domain = make_domain()
        domain.routers.add("r1")
        domain.deploy_version(8, {"r1"})
        snapshot = domain.vn_router_ids(8)
        snapshot.add("fake")
        assert domain.vn_router_ids(8) == {"r1"}
