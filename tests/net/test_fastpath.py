"""Unit tests for the flow-level forwarding fast path.

The engine-level contract: repeated identical pure-IPv4 sends within a
quiescent topology version replay the cached trace; any forwarding
state change (link/node liveness, explicit ``bump()``) or fault epoch
(``pause()``/``resume()``) drops back to the slow path.
"""

import pytest

from repro.net import Domain, Network, Outcome, Prefix, ipv4, ipv4_packet
from repro.net.address import VNAddress
from repro.net.errors import ForwardingError
from repro.net.fastpath import (FlowFastPath, fastpath_enabled, flow_fastpath,
                                set_fastpath_default)
from repro.net.forwarding import ForwardingEngine
from repro.net.node import FibEntry, RouteSource
from repro.net.packet import vn_packet


def line_network(n=3):
    """r0 - r1 - ... - r(n-1), static routes in both directions."""
    net = Network()
    net.add_domain(Domain(asn=1, name="one",
                          prefix=Prefix.parse("10.1.0.0/16")))
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i in range(n - 1):
        net.add_link(f"r{i}", f"r{i+1}")
    last = net.node(f"r{n-1}")
    first = net.node("r0")
    for i in range(n - 1):
        net.node(f"r{i}").fib4.install(FibEntry(
            prefix=Prefix.host(last.ipv4), next_hop=f"r{i+1}",
            source=RouteSource.STATIC))
        net.node(f"r{i+1}").fib4.install(FibEntry(
            prefix=Prefix.host(first.ipv4), next_hop=f"r{i}",
            source=RouteSource.STATIC))
    return net


def _packet(net):
    return ipv4_packet(net.node("r0").ipv4, net.node("r2").ipv4)


class TestFlowReplay:
    def test_repeat_send_hits_and_replays_same_trace(self):
        net = line_network()
        engine = ForwardingEngine(net)
        first = engine.forward(_packet(net), "r0")
        second = engine.forward(_packet(net), "r0")
        assert first.outcome is Outcome.DELIVERED
        assert second is first  # replayed, not re-walked
        assert engine.fastpath.stats()["hits"] == 1
        assert engine.fastpath.stats()["packets_aggregated"] == 2

    def test_flow_counts_key_on_start_and_header(self):
        net = line_network()
        engine = ForwardingEngine(net)
        for _ in range(3):
            engine.forward(_packet(net), "r0")
        key = engine.fastpath.key_for(_packet(net), "r0")
        assert engine.fastpath.flow_counts[key] == 3

    def test_different_ttl_is_a_different_flow(self):
        net = line_network()
        engine = ForwardingEngine(net)
        dst = net.node("r2").ipv4
        engine.forward(ipv4_packet(net.node("r0").ipv4, dst, ttl=64), "r0")
        engine.forward(ipv4_packet(net.node("r0").ipv4, dst, ttl=32), "r0")
        assert engine.fastpath.hits == 0
        assert len(engine.fastpath) == 2

    def test_undelivered_walks_are_never_cached(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, ipv4("99.0.0.1"))
        assert engine.forward(packet, "r0").outcome is Outcome.NO_ROUTE
        assert engine.forward(packet, "r0").outcome is Outcome.NO_ROUTE
        assert engine.fastpath.hits == 0
        assert len(engine.fastpath) == 0

    def test_vn_packets_are_not_fast_pathable(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = vn_packet(VNAddress(1, version=8), VNAddress(2, version=8))
        assert engine.fastpath.key_for(packet, "r0") is None


class TestInvalidation:
    def test_link_state_change_invalidates(self):
        net = line_network()
        engine = ForwardingEngine(net)
        engine.forward(_packet(net), "r0")
        assert len(engine.fastpath) == 1
        net.link_between("r1", "r2").fail()
        # Next lookup sees the moved topology version and re-walks.
        trace = engine.forward(_packet(net), "r0")
        assert trace.outcome is not Outcome.DELIVERED
        assert engine.fastpath.hits == 0
        assert engine.fastpath.invalidations == 1

    def test_bump_drops_cached_flows(self):
        net = line_network()
        engine = ForwardingEngine(net)
        engine.forward(_packet(net), "r0")
        engine.fastpath.bump()
        assert len(engine.fastpath) == 0
        engine.forward(_packet(net), "r0")
        assert engine.fastpath.hits == 0

    def test_bump_on_empty_cache_is_not_an_invalidation(self):
        net = line_network()
        engine = ForwardingEngine(net)
        engine.fastpath.bump()
        assert engine.fastpath.invalidations == 0


class TestPauseResume:
    def test_paused_fastpath_neither_serves_nor_stores(self):
        net = line_network()
        engine = ForwardingEngine(net)
        engine.forward(_packet(net), "r0")
        engine.fastpath.pause()
        assert not engine.fastpath.active
        assert len(engine.fastpath) == 0  # pause flushed the cache
        engine.forward(_packet(net), "r0")
        assert engine.fastpath.hits == 0
        assert len(engine.fastpath) == 0  # nothing stored while paused
        engine.fastpath.resume()
        engine.forward(_packet(net), "r0")
        engine.forward(_packet(net), "r0")
        assert engine.fastpath.hits == 1

    def test_pause_nests(self):
        fastpath = FlowFastPath(line_network())
        fastpath.pause()
        fastpath.pause()
        fastpath.resume()
        assert fastpath.paused
        fastpath.resume()
        assert not fastpath.paused

    def test_resume_without_pause_raises(self):
        fastpath = FlowFastPath(line_network())
        with pytest.raises(ForwardingError):
            fastpath.resume()


class TestDefaultScoping:
    def test_flow_fastpath_scopes_the_process_default(self):
        assert fastpath_enabled()
        with flow_fastpath(False):
            assert not fastpath_enabled()
            net = line_network()
            engine = ForwardingEngine(net)
        assert fastpath_enabled()
        # The engine keeps the setting it was constructed under.
        engine.forward(_packet(net), "r0")
        engine.forward(_packet(net), "r0")
        assert engine.fastpath.hits == 0
        assert len(engine.fastpath) == 0

    def test_set_fastpath_default_returns_previous(self):
        previous = set_fastpath_default(False)
        try:
            assert previous is True
            assert set_fastpath_default(True) is False
        finally:
            set_fastpath_default(True)

    def test_explicit_enabled_overrides_default(self):
        with flow_fastpath(False):
            fastpath = FlowFastPath(line_network(), enabled=True)
        assert fastpath.enabled
