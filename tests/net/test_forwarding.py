"""Unit tests for the forwarding engine."""

import pytest

from repro.net import (Domain, ForwardingLoopError, Network, NoRouteError,
                       Outcome, Prefix, TTLExpiredError, ipv4, ipv4_packet,
                       vn_packet)
from repro.net.address import VNAddress
from repro.net.forwarding import ForwardingEngine, VnDeliver, VnDrop
from repro.net.node import FibEntry, RouteSource


def line_network(n=3):
    """r0 - r1 - ... - r(n-1), static routes in both directions."""
    net = Network()
    net.add_domain(Domain(asn=1, name="one", prefix=Prefix.parse("10.1.0.0/16")))
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i in range(n - 1):
        net.add_link(f"r{i}", f"r{i+1}")
    last = net.node(f"r{n-1}")
    first = net.node("r0")
    for i in range(n - 1):
        net.node(f"r{i}").fib4.install(FibEntry(
            prefix=Prefix.host(last.ipv4), next_hop=f"r{i+1}",
            source=RouteSource.STATIC))
        net.node(f"r{i+1}").fib4.install(FibEntry(
            prefix=Prefix.host(first.ipv4), next_hop=f"r{i}",
            source=RouteSource.STATIC))
    return net


class TestIPv4Forwarding:
    def test_delivery(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, net.node("r2").ipv4)
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.DELIVERED
        assert trace.delivered_to == "r2"
        assert trace.physical_hops == 2
        assert trace.node_path() == ["r0", "r1", "r2"]

    def test_no_route(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, ipv4("99.0.0.1"))
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.NO_ROUTE

    def test_no_route_strict_raises(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, ipv4("99.0.0.1"))
        with pytest.raises(NoRouteError):
            engine.forward(packet, "r0", strict=True)

    def test_ttl_expiry(self):
        net = line_network(4)
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, net.node("r3").ipv4, ttl=2)
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.TTL_EXPIRED

    def test_ttl_expiry_strict_raises(self):
        net = line_network(4)
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, net.node("r3").ipv4, ttl=1)
        with pytest.raises(TTLExpiredError):
            engine.forward(packet, "r0", strict=True)

    def test_down_link_drops(self):
        net = line_network()
        net.link_between("r0", "r1").fail()
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, net.node("r2").ipv4)
        trace = engine.forward(packet, "r0")
        # A FIB entry pointing over a dead link is a fault drop, not a
        # missing route: the distinction feeds the transient-loss
        # counters of the fault-injection subsystem.
        assert trace.outcome is Outcome.FAULT_DROPPED
        assert trace.faulted
        assert "link r0<->r1 is down" in trace.drop_reason

    def test_crashed_node_drops(self):
        net = line_network()
        net.crash_node("r1")
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, net.node("r2").ipv4)
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.FAULT_DROPPED
        assert trace.faulted

    def test_routing_loop_detected(self):
        net = line_network(2)
        target = ipv4("99.0.0.1")
        net.node("r0").fib4.install(FibEntry(prefix=Prefix.host(target),
                                             next_hop="r1",
                                             source=RouteSource.STATIC))
        net.node("r1").fib4.install(FibEntry(prefix=Prefix.host(target),
                                             next_hop="r0",
                                             source=RouteSource.STATIC))
        engine = ForwardingEngine(net, max_steps=64)
        packet = ipv4_packet(net.node("r0").ipv4, target, ttl=1000)
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.LOOP

    def test_loop_strict_raises(self):
        net = line_network(2)
        target = ipv4("99.0.0.1")
        for a, b in (("r0", "r1"), ("r1", "r0")):
            net.node(a).fib4.install(FibEntry(prefix=Prefix.host(target),
                                              next_hop=b,
                                              source=RouteSource.STATIC))
        engine = ForwardingEngine(net, max_steps=16)
        with pytest.raises(ForwardingLoopError):
            engine.forward(ipv4_packet(net.node("r0").ipv4, target, ttl=1000),
                           "r0", strict=True)


class TestLocalDeliveryAndDecap:
    def test_anycast_local_address_accepts(self):
        net = line_network()
        anycast = ipv4("240.0.0.1")
        net.node("r2").add_local_ipv4(anycast)
        for i in range(2):
            net.node(f"r{i}").fib4.install(FibEntry(
                prefix=Prefix.host(anycast), next_hop=f"r{i+1}",
                source=RouteSource.STATIC))
        engine = ForwardingEngine(net)
        trace = engine.forward(ipv4_packet(net.node("r0").ipv4, anycast), "r0")
        assert trace.delivered_to == "r2"

    def test_decap_reveals_vn_and_drops_without_handler(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = vn_packet(VNAddress(1), VNAddress(2))
        from repro.net.packet import IPv4Header

        packet.encapsulate(IPv4Header(src=net.node("r0").ipv4,
                                      dst=net.node("r2").ipv4))
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.NO_VN_HANDLER
        assert trace.decapsulations == 1

    def test_vn_handler_deliver(self):
        net = line_network()
        engine = ForwardingEngine(net)
        engine.register_vn_handler(8, lambda node, packet: VnDeliver())
        net.node("r2").set_vn_state(8, object())  # non-None marks capability
        packet = vn_packet(VNAddress(1), VNAddress(2))
        from repro.net.packet import IPv4Header

        packet.encapsulate(IPv4Header(src=net.node("r0").ipv4,
                                      dst=net.node("r2").ipv4))
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.DELIVERED
        assert trace.ingress_router == "r2"

    def test_vn_handler_drop(self):
        net = line_network()
        engine = ForwardingEngine(net)
        engine.register_vn_handler(8, lambda node, packet: VnDrop("policy"))
        net.node("r2").set_vn_state(8, object())
        packet = vn_packet(VNAddress(1), VNAddress(2))
        from repro.net.packet import IPv4Header

        packet.encapsulate(IPv4Header(src=net.node("r0").ipv4,
                                      dst=net.node("r2").ipv4))
        trace = engine.forward(packet, "r0")
        assert trace.outcome is Outcome.DROPPED
        assert trace.drop_reason == "policy"

    def test_host_receives_vn_packet_for_its_address(self):
        net = line_network()
        host = net.add_host("h", 1, "r2")
        address = host.self_assign(8)
        packet = vn_packet(VNAddress(1), address)
        from repro.net.packet import IPv4Header

        packet.encapsulate(IPv4Header(src=net.node("r2").ipv4, dst=host.ipv4))
        engine = ForwardingEngine(net)
        trace = engine.forward(packet, "r2")
        assert trace.delivered_to == "h"

    def test_host_drops_foreign_vn_packet(self):
        net = line_network()
        host = net.add_host("h", 1, "r2")
        host.self_assign(8)
        packet = vn_packet(VNAddress(1), VNAddress(2))  # not the host's address
        from repro.net.packet import IPv4Header

        packet.encapsulate(IPv4Header(src=net.node("r2").ipv4, dst=host.ipv4))
        engine = ForwardingEngine(net)
        trace = engine.forward(packet, "r2")
        assert trace.outcome is Outcome.DROPPED


class TestTraceAccounting:
    def test_domain_path_collapses_repeats(self):
        net = line_network()
        engine = ForwardingEngine(net)
        packet = ipv4_packet(net.node("r0").ipv4, net.node("r2").ipv4)
        trace = engine.forward(packet, "r0")
        assert trace.domain_path() == [1]

    def test_str_contains_outcome(self):
        net = line_network()
        engine = ForwardingEngine(net)
        trace = engine.forward(
            ipv4_packet(net.node("r0").ipv4, net.node("r2").ipv4), "r0")
        assert "delivered" in str(trace)
