"""Engine-level tests for the multicast walk (forks, vN-in-vN, stress)."""

import pytest

from repro.net import Domain, Network, Prefix, ipv4
from repro.net.address import VNAddress
from repro.net.forwarding import (ForwardingEngine, Outcome, VnDeliver,
                                  VnEgress, VnEncap, VnForward, VnReplicate)
from repro.net.node import FibEntry, RouteSource
from repro.net.packet import IPv4Header, VNHeader, vn_packet


def star_network(n_leaves=3):
    """hub router h with leaf routers l0..l(n-1); static /32 routes."""
    net = Network()
    net.add_domain(Domain(asn=1, name="one", prefix=Prefix.parse("10.1.0.0/16")))
    hub = net.add_router("hub", 1)
    leaves = [net.add_router(f"l{i}", 1) for i in range(n_leaves)]
    for leaf in leaves:
        net.add_link("hub", leaf.node_id)
        hub.fib4.install(FibEntry(prefix=Prefix.host(leaf.ipv4),
                                  next_hop=leaf.node_id,
                                  source=RouteSource.STATIC))
        leaf.fib4.install(FibEntry(prefix=Prefix.host(hub.ipv4),
                                   next_hop="hub",
                                   source=RouteSource.STATIC))
    return net, hub, leaves


GROUP = VNAddress((1 << 62) | 7)


def arm(net, engine, handler):
    engine.register_vn_handler(8, handler)
    for node in net.nodes.values():
        if node.is_router:
            node.set_vn_state(8, object())


def route_hosts_via_leaves(net, hub):
    """Static hub routes to each host through its access leaf (no IGP)."""
    for node in net.nodes.values():
        if node.is_host:
            hub.fib4.install(FibEntry(prefix=Prefix.host(node.ipv4),
                                      next_hop=node.access_router,
                                      source=RouteSource.STATIC))


class TestReplication:
    def test_fork_delivers_to_all_hosts(self):
        net, hub, leaves = star_network(3)
        hosts = [net.add_host(f"h{i}", 1, leaf.node_id)
                 for i, leaf in enumerate(leaves)]
        for host in hosts:
            host.vn_groups.add(GROUP)
        engine = ForwardingEngine(net)
        route_hosts_via_leaves(net, hub)

        def handler(node, packet):
            if node.node_id == "hub":
                return VnReplicate(copies=tuple(
                    VnEgress(h.ipv4) for h in hosts), mark_downstream=True)
            return VnDeliver()

        arm(net, engine, handler)
        packet = vn_packet(VNAddress(1), GROUP)
        packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
        trace = engine.forward_multicast(packet, "hub")
        assert trace.delivered_to == {h.node_id for h in hosts}
        assert trace.transmissions == 6  # 2 hops per copy
        assert len(trace.branches) == 4  # root + 3 copies

    def test_link_stress_counts_shared_links(self):
        net, hub, leaves = star_network(1)
        host_a = net.add_host("ha", 1, leaves[0].node_id)
        host_b = net.add_host("hb", 1, leaves[0].node_id)
        for host in (host_a, host_b):
            host.vn_groups.add(GROUP)
        engine = ForwardingEngine(net)
        route_hosts_via_leaves(net, hub)

        def handler(node, packet):
            return VnReplicate(copies=(VnEgress(host_a.ipv4),
                                       VnEgress(host_b.ipv4)),
                               mark_downstream=True)

        arm(net, engine, handler)
        packet = vn_packet(VNAddress(1), GROUP)
        packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
        trace = engine.forward_multicast(packet, "hub")
        # Both copies cross the hub-l0 link: stress 2 there.
        assert trace.max_link_stress == 2

    def test_downstream_flag_stamped_once(self):
        net, hub, leaves = star_network(1)
        seen_flags = []

        def handler(node, packet):
            header = packet.outer
            seen_flags.append(header.mcast_downstream)
            if not header.mcast_downstream:
                return VnReplicate(copies=(VnForward(leaves[0].node_id),),
                                   mark_downstream=True)
            return VnDeliver()

        engine = ForwardingEngine(net)
        arm(net, engine, handler)
        packet = vn_packet(VNAddress(1), GROUP)
        packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
        trace = engine.forward_multicast(packet, "hub")
        assert seen_flags == [False, True]
        assert trace.delivered_to == {leaves[0].node_id}

    def test_replicate_in_unicast_walk_drops(self):
        net, hub, leaves = star_network(1)
        engine = ForwardingEngine(net)

        def handler(node, packet):
            return VnReplicate(copies=(VnForward(leaves[0].node_id),))

        arm(net, engine, handler)
        packet = vn_packet(VNAddress(1), GROUP)
        packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
        trace = engine.forward(packet, "hub")
        assert trace.outcome is Outcome.DROPPED
        assert "replication" in trace.drop_reason


class TestVnInVn:
    def test_encap_then_deliver_decapsulates_and_continues(self):
        """A vN-in-vN tunnel (multicast register) unwraps at its
        destination and processing continues with the inner header."""
        net, hub, leaves = star_network(1)
        core = leaves[0]
        core_vn = VNAddress((1 << 32) | 1)
        host = net.add_host("h", 1, core.node_id)
        host.vn_groups.add(GROUP)

        def handler(node, packet):
            header = packet.outer
            if header.dst == core_vn:
                # Only the core answers to the core's vN address (the
                # real handler compares against its OWN address).
                if node.node_id == core.node_id:
                    return VnDeliver()  # depth > 1: engine unwraps
                return VnForward(core.node_id)
            if node.node_id == "hub":
                # Register phase: tunnel the group packet to the core.
                return VnEncap(VNHeader(src=VNAddress(2), dst=core_vn))
            return VnReplicate(copies=(VnEgress(host.ipv4),),
                               mark_downstream=True)

        engine = ForwardingEngine(net)
        arm(net, engine, handler)
        packet = vn_packet(VNAddress(2), GROUP)
        packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
        trace = engine.forward_multicast(packet, "hub")
        # hub: decap -> group -> VnEncap(core) -> VnForward tunnel ->
        # core: unwrap register -> group header -> replicate -> host.
        assert trace.delivered_to == {host.node_id}
        decaps = [hop for branch in trace.branches for hop in branch.hops
                  if hop.action == "vn-decap"]
        assert decaps, "register tunnel must be unwrapped at the core"

    def test_vn_decap_recorded(self):
        """VnDeliver with stacked vN headers records a vn-decap hop."""
        net, hub, leaves = star_network(1)
        inner_dst = VNAddress((1 << 32) | 9)

        def handler(node, packet):
            return VnDeliver()

        engine = ForwardingEngine(net)
        arm(net, engine, handler)
        packet = vn_packet(VNAddress(1), inner_dst)
        packet.encapsulate(VNHeader(src=VNAddress(1), dst=VNAddress(5)))
        packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
        trace = engine.forward(packet, "hub")
        actions = [h.action for h in trace.hops]
        assert "vn-decap" in actions
        assert trace.outcome is Outcome.DELIVERED
