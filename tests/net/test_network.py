"""Unit tests for the network container and graph utilities."""

import pytest

from repro.net import (Domain, LinkScope, Network, Prefix, Relationship,
                       TopologyError, ipv4)


def net_with_domain(asn=1):
    net = Network()
    net.add_domain(Domain(asn=asn, name=f"as{asn}",
                          prefix=Prefix.parse(f"10.{asn}.0.0/16")))
    return net


class TestConstruction:
    def test_duplicate_domain_rejected(self):
        net = net_with_domain()
        with pytest.raises(TopologyError):
            net.add_domain(Domain(asn=1, name="dup",
                                  prefix=Prefix.parse("10.9.0.0/16")))

    def test_router_needs_known_domain(self):
        with pytest.raises(TopologyError):
            Network().add_router("r", 1)

    def test_duplicate_node_rejected(self):
        net = net_with_domain()
        net.add_router("r", 1)
        with pytest.raises(TopologyError):
            net.add_router("r", 1)

    def test_duplicate_address_rejected(self):
        net = net_with_domain()
        net.add_router("r1", 1, ipv4=ipv4("10.1.0.9"))
        with pytest.raises(TopologyError):
            net.add_router("r2", 1, ipv4=ipv4("10.1.0.9"))

    def test_auto_address_from_domain_block(self):
        net = net_with_domain()
        router = net.add_router("r", 1)
        assert net.domains[1].prefix.contains(router.ipv4)

    def test_parallel_link_rejected(self):
        net = net_with_domain()
        net.add_router("a", 1)
        net.add_router("b", 1)
        net.add_link("a", "b")
        with pytest.raises(TopologyError):
            net.add_link("b", "a")

    def test_inter_domain_link_requires_border(self):
        net = net_with_domain(1)
        net.add_domain(Domain(asn=2, name="as2", prefix=Prefix.parse("10.2.0.0/16")))
        net.add_router("r1", 1, is_border=False)
        net.add_router("r2", 2, is_border=True)
        with pytest.raises(TopologyError):
            net.add_link("r1", "r2")

    def test_link_scope_derived(self):
        net = net_with_domain(1)
        net.add_domain(Domain(asn=2, name="as2", prefix=Prefix.parse("10.2.0.0/16")))
        net.add_router("a", 1, is_border=True)
        net.add_router("b", 1)
        net.add_router("c", 2, is_border=True)
        assert net.add_link("a", "b").scope is LinkScope.INTRA_DOMAIN
        assert net.add_link("a", "c").scope is LinkScope.INTER_DOMAIN

    def test_connect_domains_records_both_sides(self):
        net = net_with_domain(1)
        net.add_domain(Domain(asn=2, name="as2", prefix=Prefix.parse("10.2.0.0/16")))
        net.add_router("a", 1, is_border=True)
        net.add_router("b", 2, is_border=True)
        net.connect_domains(1, 2, "a", "b", Relationship.PROVIDER)
        assert net.domains[1].relationship_with(2) is Relationship.PROVIDER
        assert net.domains[2].relationship_with(1) is Relationship.CUSTOMER

    def test_host_attaches_to_same_domain_router(self):
        net = net_with_domain(1)
        net.add_domain(Domain(asn=2, name="as2", prefix=Prefix.parse("10.2.0.0/16")))
        net.add_router("a", 1)
        with pytest.raises(TopologyError):
            net.add_host("h", 2, "a")

    def test_host_gets_default_route(self):
        net = net_with_domain()
        net.add_router("a", 1)
        host = net.add_host("h", 1, "a")
        found = host.fib4.lookup(ipv4("200.0.0.1"))
        assert found is not None and found.next_hop == "a"

    def test_access_router_gets_host_route(self):
        net = net_with_domain()
        router = net.add_router("a", 1)
        host = net.add_host("h", 1, "a")
        found = router.fib4.lookup(host.ipv4)
        assert found is not None and found.next_hop == "h"


class TestQueries:
    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            net_with_domain().node("ghost")

    def test_node_by_ipv4(self):
        net = net_with_domain()
        router = net.add_router("r", 1)
        assert net.node_by_ipv4(router.ipv4) is router
        assert net.node_by_ipv4(ipv4("99.0.0.1")) is None

    def test_neighbors_skip_down_links(self):
        net = net_with_domain()
        net.add_router("a", 1)
        net.add_router("b", 1)
        link = net.add_link("a", "b")
        assert [n for n, _ in net.neighbors("a")] == ["b"]
        link.fail()
        assert net.neighbors("a") == []
        assert [n for n, _ in net.neighbors("a", include_down=True)] == ["b"]

    def test_routers_and_hosts_filters(self):
        net = net_with_domain()
        net.add_router("a", 1)
        net.add_host("h", 1, "a")
        assert [r.node_id for r in net.routers(1)] == ["a"]
        assert [h.node_id for h in net.hosts(1)] == ["h"]


class TestShortestPath:
    def build_triangle(self):
        net = net_with_domain()
        for name in "abc":
            net.add_router(name, 1)
        net.add_link("a", "b", cost=1.0)
        net.add_link("b", "c", cost=1.0)
        net.add_link("a", "c", cost=5.0)
        return net

    def test_prefers_cheap_two_hop(self):
        net = self.build_triangle()
        result = net.shortest_path("a", "c")
        assert result is not None
        cost, path = result
        assert cost == 2.0
        assert path == ["a", "b", "c"]

    def test_uses_direct_after_failure(self):
        net = self.build_triangle()
        net.link_between("a", "b").fail()
        result = net.shortest_path("a", "c")
        assert result is not None
        assert result[0] == 5.0

    def test_none_when_disconnected(self):
        net = self.build_triangle()
        net.link_between("a", "b").fail()
        net.link_between("a", "c").fail()
        assert net.shortest_path("a", "c") is None

    def test_same_node_zero(self):
        net = self.build_triangle()
        assert net.shortest_path("a", "a") == (0.0, ["a"])

    def test_intra_domain_only_blocks_inter_links(self):
        net = self.build_triangle()
        net.add_domain(Domain(asn=2, name="as2", prefix=Prefix.parse("10.2.0.0/16")))
        net.add_router("d", 2, is_border=True)
        # Make 'c' a border so the inter-domain link is legal.
        net.nodes["c"].is_border = True
        net.domains[1].border_routers.add("c")
        net.add_link("c", "d")
        assert net.shortest_path("a", "d") is not None
        assert net.shortest_path("a", "d", intra_domain_only=True) is None

    def test_shortest_path_tree_matches_pairwise(self):
        net = self.build_triangle()
        tree = net.shortest_path_tree("a")
        for target in "abc":
            pair = net.shortest_path("a", target)
            assert pair is not None
            assert tree[target][0] == pair[0]

    def test_stats(self):
        net = self.build_triangle()
        stats = net.stats()
        assert stats["domains"] == 1
        assert stats["routers"] == 3
        assert stats["links"] == 3
