"""Unit tests for nodes, FIBs, and links."""

import pytest

from repro.net.address import IPv4Address, Prefix, VNAddress, ipv4
from repro.net.errors import TopologyError
from repro.net.link import Link, LinkScope
from repro.net.node import Fib, FibEntry, Host, NodeKind, Router, RouteSource


def entry(text, next_hop, source, metric=0.0):
    return FibEntry(prefix=Prefix.parse(text), next_hop=next_hop,
                    source=source, metric=metric)


class TestLink:
    def test_other_endpoint(self):
        link = Link(a="x", b="y")
        assert link.other("x") == "y"
        assert link.other("y") == "x"

    def test_other_rejects_stranger(self):
        with pytest.raises(TopologyError):
            Link(a="x", b="y").other("z")

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link(a="x", b="x")

    def test_negative_cost_rejected(self):
        with pytest.raises(TopologyError):
            Link(a="x", b="y", cost=-1)

    def test_endpoints_canonical(self):
        assert Link(a="y", b="x").endpoints() == ("x", "y")

    def test_fail_and_restore(self):
        link = Link(a="x", b="y")
        link.fail()
        assert not link.up
        link.restore()
        assert link.up

    def test_default_scope_intra(self):
        assert Link(a="x", b="y").scope is LinkScope.INTRA_DOMAIN


class TestFib:
    def test_lookup_longest_prefix(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", "a", RouteSource.BGP))
        fib.install(entry("10.1.0.0/16", "b", RouteSource.BGP))
        found = fib.lookup(ipv4("10.1.2.3"))
        assert found is not None and found.next_hop == "b"

    def test_admin_distance_igp_beats_bgp(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", "bgp-hop", RouteSource.BGP))
        fib.install(entry("10.0.0.0/8", "igp-hop", RouteSource.IGP))
        found = fib.lookup(ipv4("10.5.0.1"))
        assert found is not None and found.next_hop == "igp-hop"

    def test_metric_breaks_same_source(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", "far", RouteSource.IGP, metric=9.0))
        # A re-install from the same source replaces the earlier offer.
        fib.install(entry("10.0.0.0/8", "near", RouteSource.IGP, metric=1.0))
        found = fib.lookup(ipv4("10.0.0.1"))
        assert found is not None and found.next_hop == "near"

    def test_withdraw_only_named_source(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", "bgp-hop", RouteSource.BGP))
        fib.install(entry("10.0.0.0/8", "igp-hop", RouteSource.IGP))
        assert fib.withdraw(Prefix.parse("10.0.0.0/8"), RouteSource.IGP)
        found = fib.lookup(ipv4("10.0.0.1"))
        assert found is not None and found.next_hop == "bgp-hop"

    def test_withdraw_missing_returns_false(self):
        assert not Fib().withdraw(Prefix.parse("10.0.0.0/8"), RouteSource.IGP)

    def test_withdraw_all(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", "a", RouteSource.IGP))
        fib.install(entry("11.0.0.0/8", "b", RouteSource.IGP))
        fib.install(entry("12.0.0.0/8", "c", RouteSource.BGP))
        assert fib.withdraw_all(RouteSource.IGP) == 2
        assert fib.route_count() == 1

    def test_non_local_needs_next_hop(self):
        with pytest.raises(TopologyError):
            FibEntry(prefix=Prefix.parse("10.0.0.0/8"), next_hop=None,
                     source=RouteSource.IGP)

    def test_local_entry_allowed(self):
        fib_entry = FibEntry(prefix=Prefix.parse("10.0.0.0/32"), next_hop=None,
                             source=RouteSource.CONNECTED, local=True)
        assert fib_entry.local

    def test_entries_one_per_prefix(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", "a", RouteSource.BGP))
        fib.install(entry("10.0.0.0/8", "b", RouteSource.IGP))
        assert len(fib.entries()) == 1


class TestNodes:
    def test_router_accepts_own_address(self):
        router = Router(node_id="r", ipv4=ipv4("10.0.0.1"), domain_id=1)
        assert router.accepts_ipv4(ipv4("10.0.0.1"))
        assert not router.accepts_ipv4(ipv4("10.0.0.2"))

    def test_anycast_membership_via_local_address(self):
        router = Router(node_id="r", ipv4=ipv4("10.0.0.1"), domain_id=1)
        anycast = ipv4("240.0.0.1")
        router.add_local_ipv4(anycast)
        assert router.accepts_ipv4(anycast)
        router.remove_local_ipv4(anycast)
        assert not router.accepts_ipv4(anycast)

    def test_cannot_remove_primary_address(self):
        router = Router(node_id="r", ipv4=ipv4("10.0.0.1"), domain_id=1)
        with pytest.raises(TopologyError):
            router.remove_local_ipv4(ipv4("10.0.0.1"))

    def test_host_requires_access_router(self):
        with pytest.raises(TopologyError):
            Host(node_id="h", ipv4=ipv4("10.0.0.9"), domain_id=1,
                 kind=NodeKind.HOST, access_router="")

    def test_host_self_assign(self):
        host = Host(node_id="h", ipv4=ipv4("10.4.0.3"), domain_id=1,
                    kind=NodeKind.HOST, access_router="r")
        address = host.self_assign(8)
        assert address.is_self_assigned
        assert host.vn_address(8) == address
        assert host.vn_address(9) is None

    def test_host_assign_native(self):
        host = Host(node_id="h", ipv4=ipv4("10.4.0.3"), domain_id=1,
                    kind=NodeKind.HOST, access_router="r")
        native = VNAddress((1 << 32) | 7)
        host.assign_vn_address(native)
        assert host.vn_address(8) == native

    def test_kind_flags(self):
        router = Router(node_id="r", ipv4=ipv4("10.0.0.1"), domain_id=1)
        host = Host(node_id="h", ipv4=ipv4("10.0.0.2"), domain_id=1,
                    kind=NodeKind.HOST, access_router="r")
        assert router.is_router and not router.is_host
        assert host.is_host and not host.is_router
