"""Unit tests for packets and header encapsulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.address import IPv4Address, VNAddress, ipv4
from repro.net.errors import ForwardingError
from repro.net.packet import (DEFAULT_TTL, IPv4Header, Packet, VNHeader,
                              ipv4_packet, vn_packet)


def make_vn_header(**kwargs):
    return VNHeader(src=VNAddress(1), dst=VNAddress(2), **kwargs)


class TestHeaders:
    def test_ipv4_decrement(self):
        header = IPv4Header(src=ipv4("1.1.1.1"), dst=ipv4("2.2.2.2"), ttl=10)
        assert header.decremented().ttl == 9
        assert header.ttl == 10  # frozen original untouched

    def test_vn_decrement(self):
        assert make_vn_header(ttl=5).decremented().ttl == 4

    def test_effective_dest_from_option_field(self):
        target = ipv4("9.9.9.9")
        header = make_vn_header(dest_ipv4=target)
        assert header.effective_dest_ipv4() == target

    def test_effective_dest_inferred_from_self_address(self):
        embedded = ipv4("10.4.0.3")
        header = VNHeader(src=VNAddress(1),
                          dst=VNAddress.self_assigned(embedded))
        assert header.effective_dest_ipv4() == embedded

    def test_option_field_beats_inference(self):
        option = ipv4("8.8.8.8")
        header = VNHeader(src=VNAddress(1),
                          dst=VNAddress.self_assigned(ipv4("10.0.0.1")),
                          dest_ipv4=option)
        assert header.effective_dest_ipv4() == option

    def test_native_dst_without_option_has_no_dest(self):
        assert make_vn_header().effective_dest_ipv4() is None

    def test_version_from_dst(self):
        header = VNHeader(src=VNAddress(1, version=9), dst=VNAddress(2, version=9))
        assert header.version == 9


class TestPacket:
    def test_needs_a_header(self):
        with pytest.raises(ForwardingError):
            Packet(headers=[])

    def test_encapsulate_changes_outer(self):
        packet = vn_packet(VNAddress(1), VNAddress(2))
        inner = packet.outer
        outer = IPv4Header(src=ipv4("1.1.1.1"), dst=ipv4("2.2.2.2"))
        packet.encapsulate(outer)
        assert packet.outer is outer
        assert packet.inner is inner
        assert packet.depth == 2

    def test_decapsulate_restores_inner(self):
        packet = vn_packet(VNAddress(1), VNAddress(2))
        outer = IPv4Header(src=ipv4("1.1.1.1"), dst=ipv4("2.2.2.2"))
        packet.encapsulate(outer)
        popped = packet.decapsulate()
        assert popped is outer
        assert packet.depth == 1

    def test_cannot_pop_last_header(self):
        packet = ipv4_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"))
        with pytest.raises(ForwardingError):
            packet.decapsulate()

    def test_vn_header_finds_topmost_vn(self):
        packet = vn_packet(VNAddress(1), VNAddress(2))
        packet.encapsulate(IPv4Header(src=ipv4("1.1.1.1"), dst=ipv4("2.2.2.2")))
        found = packet.vn_header()
        assert found is not None and found.dst == VNAddress(2)

    def test_vn_header_none_for_plain_ipv4(self):
        assert ipv4_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2")).vn_header() is None

    def test_replace_outer(self):
        packet = ipv4_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), ttl=5)
        packet.replace_outer(packet.outer.decremented())
        assert packet.outer.ttl == 4

    def test_copy_is_independent(self):
        packet = vn_packet(VNAddress(1), VNAddress(2))
        clone = packet.copy()
        clone.encapsulate(IPv4Header(src=ipv4("1.1.1.1"), dst=ipv4("2.2.2.2")))
        assert packet.depth == 1
        assert clone.depth == 2
        assert clone.packet_id == packet.packet_id

    def test_packet_ids_unique(self):
        a = ipv4_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"))
        b = ipv4_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"))
        assert a.packet_id != b.packet_id

    def test_default_ttl(self):
        assert ipv4_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2")).outer.ttl == DEFAULT_TTL

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=1, max_size=6))
    def test_encap_decap_stack_property(self, values):
        packet = vn_packet(VNAddress(1), VNAddress(2))
        headers = [IPv4Header(src=IPv4Address(v), dst=IPv4Address(v)) for v in values]
        for header in headers:
            packet.encapsulate(header)
        for header in reversed(headers):
            assert packet.decapsulate() is header
        assert packet.depth == 1
