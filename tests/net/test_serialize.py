"""Round-trip tests for topology serialization."""

import json

import pytest

from repro.net import Network, ipv4_packet
from repro.net.errors import TopologyError
from repro.net.serialize import (load_network, network_from_dict,
                                 network_to_dict, save_network)
from repro.core.orchestrator import Orchestrator
from repro.topogen import small_internet
from tests.conftest import build_hub_network


def roundtrip(network: Network) -> Network:
    return network_from_dict(network_to_dict(network))


class TestRoundTrip:
    def test_stats_preserved(self):
        original = build_hub_network()
        clone = roundtrip(original)
        assert clone.stats() == original.stats()

    def test_addresses_preserved(self):
        original = build_hub_network()
        clone = roundtrip(original)
        for node_id, node in original.nodes.items():
            assert clone.node(node_id).ipv4 == node.ipv4
            assert clone.node(node_id).domain_id == node.domain_id

    def test_relationships_preserved(self):
        original = build_hub_network()
        clone = roundtrip(original)
        for asn, domain in original.domains.items():
            assert clone.domains[asn].relationships == domain.relationships
            assert clone.domains[asn].tier == domain.tier

    def test_link_state_preserved(self):
        original = build_hub_network()
        original.link_between("w1", "w2").fail()
        clone = roundtrip(original)
        assert not clone.link_between("w1", "w2").up

    def test_policy_flags_preserved(self):
        original = build_hub_network()
        original.domains[2].propagates_anycast = False
        clone = roundtrip(original)
        assert not clone.domains[2].propagates_anycast

    def test_generated_internet_roundtrip(self):
        original = small_internet(5).network
        clone = roundtrip(original)
        assert clone.stats() == original.stats()
        assert sorted(clone.links) == sorted(original.links)

    def test_forwarding_equivalence(self):
        """A reloaded topology converges to the same forwarding paths."""
        original = small_internet(5).network
        clone = roundtrip(original)
        orig_orch = Orchestrator(original, seed=1)
        clone_orch = Orchestrator(clone, seed=1)
        orig_orch.converge()
        clone_orch.converge()
        hosts = sorted(n.node_id for n in original.nodes.values() if n.is_host)
        for src, dst in zip(hosts[:5], hosts[-5:]):
            if src == dst:
                continue
            packet_a = ipv4_packet(original.node(src).ipv4,
                                   original.node(dst).ipv4)
            packet_b = ipv4_packet(clone.node(src).ipv4, clone.node(dst).ipv4)
            trace_a = orig_orch.forward(packet_a, src)
            trace_b = clone_orch.forward(packet_b, src)
            assert trace_a.node_path() == trace_b.node_path()


class TestFiles:
    def test_save_and_load(self, tmp_path):
        original = build_hub_network()
        path = tmp_path / "topology.json"
        save_network(original, path)
        clone = load_network(path)
        assert clone.stats() == original.stats()

    def test_file_is_json(self, tmp_path):
        path = tmp_path / "topology.json"
        save_network(build_hub_network(), path)
        data = json.loads(path.read_text())
        assert data["format"] == 1
        assert {"domains", "routers", "hosts", "links"} <= set(data)

    def test_unknown_format_rejected(self):
        with pytest.raises(TopologyError):
            network_from_dict({"format": 99})
