"""Unit tests for the discrete-event kernel."""

import pytest

from repro.net.errors import ConvergenceError, SimulationError
from repro.net.simulator import EventScheduler, MessageStats


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(3.0, lambda: order.append("c"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(2.0, lambda: order.append("b"))
        sched.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sched = EventScheduler()
        order = []
        for name in "abc":
            sched.schedule(1.0, lambda n=name: order.append(n))
        sched.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(5.0, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sched = EventScheduler()
        sched.schedule(2.0, lambda: None)
        sched.step()
        seen = []
        sched.schedule_at(7.0, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [7.0]

    def test_events_scheduled_during_run_execute(self):
        sched = EventScheduler()
        order = []

        def outer():
            order.append("outer")
            sched.schedule(1.0, lambda: order.append("inner"))

        sched.schedule(1.0, outer)
        sched.run_until_idle()
        assert order == ["outer", "inner"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sched.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_len_excludes_cancelled(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert len(sched) == 1
        assert keep.time == 1.0


class TestRunModes:
    def test_step_returns_false_when_idle(self):
        assert EventScheduler().step() is False

    def test_run_until_stops_at_time(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(10.0, lambda: fired.append(10))
        processed = sched.run_until(5.0)
        assert processed == 1
        assert fired == [1]
        assert sched.now == 5.0

    def test_run_until_idle_counts_events(self):
        sched = EventScheduler()
        for _ in range(4):
            sched.schedule(1.0, lambda: None)
        assert sched.run_until_idle() == 4
        assert sched.events_processed == 4

    def test_event_budget_raises(self):
        sched = EventScheduler()

        def reschedule():
            sched.schedule(1.0, reschedule)

        sched.schedule(1.0, reschedule)
        with pytest.raises(ConvergenceError):
            sched.run_until_idle(max_events=50)

    def test_rng_is_seeded(self):
        a = EventScheduler(seed=42).rng.random()
        b = EventScheduler(seed=42).rng.random()
        assert a == b


class TestMessageStats:
    def test_counters(self):
        stats = MessageStats()
        stats.record_send(size=3)
        stats.record_send()
        stats.record_delivery()
        assert stats.sent == 2
        assert stats.bytes_sent == 4
        assert stats.delivered == 1

    def test_reset(self):
        stats = MessageStats()
        stats.record_send()
        stats.reset()
        assert stats.sent == 0 and stats.bytes_sent == 0
