"""Unit tests for the discrete-event kernel."""

import pytest

from repro.net.errors import ConvergenceError, SimulationError
from repro.net.simulator import EventScheduler, MessageStats


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(3.0, lambda: order.append("c"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(2.0, lambda: order.append("b"))
        sched.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sched = EventScheduler()
        order = []
        for name in "abc":
            sched.schedule(1.0, lambda n=name: order.append(n))
        sched.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(5.0, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sched = EventScheduler()
        sched.schedule(2.0, lambda: None)
        sched.step()
        seen = []
        sched.schedule_at(7.0, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [7.0]

    def test_events_scheduled_during_run_execute(self):
        sched = EventScheduler()
        order = []

        def outer():
            order.append("outer")
            sched.schedule(1.0, lambda: order.append("inner"))

        sched.schedule(1.0, outer)
        sched.run_until_idle()
        assert order == ["outer", "inner"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sched.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_len_excludes_cancelled(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert len(sched) == 1
        assert keep.time == 1.0


class TestLiveCounter:
    """__len__ is a maintained counter, not a heap scan; pin its semantics."""

    def test_len_tracks_schedule_cancel_and_step(self):
        sched = EventScheduler()
        handles = [sched.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert len(sched) == 5
        handles[1].cancel()
        handles[3].cancel()
        assert len(sched) == 3
        sched.step()  # fires handles[0]
        assert len(sched) == 2
        sched.run_until_idle()
        assert len(sched) == 0

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        sched.schedule(2.0, lambda: None)
        handle = sched.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        handle.cancel()
        assert len(sched) == 1

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sched = EventScheduler()
        handle = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        sched.step()  # fires handle's event
        handle.cancel()  # too late; must not decrement
        assert len(sched) == 1

    def test_len_survives_reentrant_scheduling(self):
        sched = EventScheduler()

        def outer():
            sched.schedule(1.0, lambda: None)
            sched.schedule(2.0, lambda: None)

        sched.schedule(1.0, outer)
        assert len(sched) == 1
        sched.step()
        assert len(sched) == 2


class TestMessagePerturbation:
    def test_no_perturbation_is_plain_schedule(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_message(1.0, lambda: fired.append(1))
        sched.run_until_idle()
        assert fired == [1]
        assert sched.messages_lost == 0

    def test_full_loss_drops_every_message(self):
        sched = EventScheduler(seed=7)
        fired = []
        sched.set_message_perturbation(loss_prob=1.0)
        for _ in range(10):
            handle = sched.schedule_message(1.0, lambda: fired.append(1))
            assert handle.cancelled
        assert len(sched) == 0
        sched.run_until_idle()
        assert fired == []
        assert sched.messages_lost == 10

    def test_partial_loss_is_seeded_deterministic(self):
        def run(seed):
            sched = EventScheduler(seed=seed)
            sched.set_message_perturbation(loss_prob=0.5)
            delivered = []
            for i in range(40):
                sched.schedule_message(1.0, lambda i=i: delivered.append(i))
            sched.run_until_idle()
            return delivered, sched.messages_lost

        first = run(123)
        second = run(123)
        assert first == second
        delivered, lost = first
        assert lost == 40 - len(delivered)
        assert 0 < lost < 40  # p=0.5 over 40 trials: both outcomes occur

    def test_jitter_reorders_messages(self):
        sched = EventScheduler(seed=3)
        sched.set_message_perturbation(reorder_jitter=5.0)
        order = []
        for i in range(10):
            sched.schedule_message(1.0, lambda i=i: order.append(i))
        sched.run_until_idle()
        assert sorted(order) == list(range(10))
        assert order != list(range(10))  # jitter shuffled same-time sends
        assert sched.messages_reordered > 0

    def test_clear_restores_reliable_delivery(self):
        sched = EventScheduler()
        sched.set_message_perturbation(loss_prob=1.0)
        sched.clear_message_perturbation()
        fired = []
        sched.schedule_message(1.0, lambda: fired.append(1))
        sched.run_until_idle()
        assert fired == [1]

    def test_timers_are_never_perturbed(self):
        sched = EventScheduler()
        sched.set_message_perturbation(loss_prob=1.0, reorder_jitter=10.0)
        fired = []
        sched.schedule(1.0, lambda: fired.append(sched.now))
        sched.run_until_idle()
        assert fired == [1.0]

    def test_invalid_parameters_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.set_message_perturbation(loss_prob=1.5)
        with pytest.raises(SimulationError):
            sched.set_message_perturbation(loss_prob=-0.1)
        with pytest.raises(SimulationError):
            sched.set_message_perturbation(reorder_jitter=-1.0)


class TestRunModes:
    def test_step_returns_false_when_idle(self):
        assert EventScheduler().step() is False

    def test_run_until_stops_at_time(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(10.0, lambda: fired.append(10))
        processed = sched.run_until(5.0)
        assert processed == 1
        assert fired == [1]
        assert sched.now == 5.0

    def test_run_until_idle_counts_events(self):
        sched = EventScheduler()
        for _ in range(4):
            sched.schedule(1.0, lambda: None)
        assert sched.run_until_idle() == 4
        assert sched.events_processed == 4

    def test_event_budget_raises(self):
        sched = EventScheduler()

        def reschedule():
            sched.schedule(1.0, reschedule)

        sched.schedule(1.0, reschedule)
        with pytest.raises(ConvergenceError):
            sched.run_until_idle(max_events=50)

    def test_rng_is_seeded(self):
        a = EventScheduler(seed=42).rng.random()
        b = EventScheduler(seed=42).rng.random()
        assert a == b


class TestMessageStats:
    def test_counters(self):
        stats = MessageStats()
        stats.record_send(size=3)
        stats.record_send()
        stats.record_delivery()
        assert stats.sent == 2
        assert stats.bytes_sent == 4
        assert stats.delivered == 1

    def test_reset(self):
        stats = MessageStats()
        stats.record_send()
        stats.reset()
        assert stats.sent == 0 and stats.bytes_sent == 0
