"""Property-based tests for the discrete-event kernel.

These pin the invariants every protocol in the repo silently relies on:

* events fire in (time, insertion-seq) order no matter how schedule and
  cancel calls interleave;
* ``run_until(t)`` never executes an event stamped after *t*;
* cancellation is idempotent and the live-event counter (``len``)
  agrees with an independently maintained model at every step.

The suite runs under the fixed ``ci`` hypothesis profile (see
``tests/conftest.py``) so CI failures are reproducible.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.net.simulator import EventScheduler  # noqa: E402

# One interleaving step: schedule a new event with this delay (float op),
# or cancel an already-issued handle (int op, index modulo issued count).
_ops = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=200),
    ),
    max_size=60,
)


def _apply_ops(sched, ops, fired):
    """Run an op sequence; returns (handles, expected_live_count)."""
    handles = []
    live = set()
    for op in ops:
        if isinstance(op, float):
            idx = len(handles)
            handles.append(
                sched.schedule(op, lambda i=idx: fired.append(i)))
            live.add(idx)
        elif handles:
            idx = op % len(handles)
            handles[idx].cancel()
            live.discard(idx)
    return handles, live


class TestFiringOrder:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0,
                                     allow_nan=False, allow_infinity=False),
                           max_size=50))
    def test_events_fire_in_time_then_seq_order(self, delays):
        sched = EventScheduler()
        fired = []
        for idx, delay in enumerate(delays):
            sched.schedule(delay, lambda i=idx: fired.append(i))
        sched.run_until_idle()
        # All events scheduled up front: firing order must match sorting
        # by (time, insertion sequence).
        expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
        assert fired == expected

    @given(ops=_ops)
    def test_order_holds_under_cancellation_interleavings(self, ops):
        sched = EventScheduler()
        fired = []
        handles, live = _apply_ops(sched, ops, fired)
        sched.run_until_idle()
        assert set(fired) == live  # cancelled never fire, live always do
        times = [handles[i].time for i in fired]
        assert times == sorted(times)
        # Equal-time events keep insertion order.
        for (i, j) in zip(fired, fired[1:]):
            if handles[i].time == handles[j].time:
                assert i < j


class TestRunUntilBound:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                     allow_nan=False, allow_infinity=False),
                           max_size=40),
           horizon=st.floats(min_value=0.0, max_value=100.0,
                             allow_nan=False, allow_infinity=False))
    def test_run_until_never_overruns_horizon(self, delays, horizon):
        sched = EventScheduler()
        fired_times = []
        for delay in delays:
            sched.schedule(delay, lambda d=delay: fired_times.append(d))
        sched.run_until(horizon)
        assert all(t <= horizon for t in fired_times)
        assert sched.now == max([horizon] + fired_times)
        # Exactly the events at or before the horizon fired.
        assert sorted(fired_times) == sorted(d for d in delays if d <= horizon)


class TestCancellationAndLiveCount:
    @given(ops=_ops)
    def test_len_matches_model_after_interleaving(self, ops):
        sched = EventScheduler()
        fired = []
        _, live = _apply_ops(sched, ops, fired)
        assert len(sched) == len(live)
        sched.run_until_idle()
        assert len(sched) == 0

    @given(ops=_ops, repeats=st.integers(min_value=2, max_value=4))
    def test_cancellation_is_idempotent(self, ops, repeats):
        sched = EventScheduler()
        fired = []
        handles, live = _apply_ops(sched, ops, fired)
        # Re-cancel every already-cancelled handle several times over.
        for handle in handles:
            if handle.cancelled:
                for _ in range(repeats):
                    handle.cancel()
        assert len(sched) == len(live)
        sched.run_until_idle()
        assert set(fired) == live

    @given(ops=_ops)
    def test_cancel_after_drain_is_harmless(self, ops):
        sched = EventScheduler()
        fired = []
        handles, _ = _apply_ops(sched, ops, fired)
        sched.run_until_idle()
        for handle in handles:
            handle.cancel()  # events already fired or cancelled
        assert len(sched) == 0
        count = len(fired)
        sched.run_until_idle()
        assert len(fired) == count  # nothing re-fires


# Interleavings for the two-implementation equivalence suite: schedule
# with a delay drawn from a coarse grid (forcing same-timestamp ties and
# bucket-boundary collisions), or cancel an issued handle by index.
_tie_ops = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=40).map(lambda n: n * 0.5),
        st.floats(min_value=0.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=200),
    ),
    max_size=60,
)


def _drive(queue_kind, ops, horizon=None):
    """Run one op sequence on one queue implementation.

    Returns the fired event indices in order plus the final clock, so
    two implementations can be compared wholesale.
    """
    sched = EventScheduler(queue=queue_kind)
    fired = []
    handles = []
    for op in ops:
        if isinstance(op, float):
            idx = len(handles)
            handles.append(sched.schedule(op, lambda i=idx: fired.append(i)))
        elif handles:
            handles[op % len(handles)].cancel()
    if horizon is None:
        sched.run_until_idle()
    else:
        sched.run_until(horizon)
    return fired, sched.now, len(sched)


class TestCalendarHeapEquivalence:
    """The calendar queue must be order-equivalent to the seed heap."""

    @given(ops=_tie_ops)
    def test_identical_fired_sequence(self, ops):
        heap_run = _drive("heap", ops)
        calendar_run = _drive("calendar", ops)
        assert calendar_run == heap_run

    @given(ops=_tie_ops,
           horizon=st.floats(min_value=0.0, max_value=20.0,
                             allow_nan=False, allow_infinity=False))
    def test_identical_under_run_until(self, ops, horizon):
        assert _drive("calendar", ops, horizon) == _drive("heap", ops, horizon)

    @given(ops=_tie_ops,
           width=st.sampled_from([0.1, 0.5, 1.0, 3.0, 100.0]))
    def test_bucket_width_never_changes_order(self, ops, width):
        sched = EventScheduler(queue="calendar", bucket_width=width)
        fired = []
        handles = []
        for op in ops:
            if isinstance(op, float):
                idx = len(handles)
                handles.append(
                    sched.schedule(op, lambda i=idx: fired.append(i)))
            elif handles:
                handles[op % len(handles)].cancel()
        sched.run_until_idle()
        assert (fired, sched.now) == _drive("heap", ops)[:2]

    @given(delays=st.lists(st.integers(min_value=0, max_value=6),
                           min_size=1, max_size=40))
    def test_same_timestamp_ties_break_by_insertion_seq(self, delays):
        # Integer delays guarantee heavy timestamp collisions; both
        # implementations must break ties by insertion sequence.
        float_delays = [float(d) for d in delays]
        heap_fired, _, _ = _drive("heap", float_delays)
        calendar_fired, _, _ = _drive("calendar", float_delays)
        expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
        assert heap_fired == expected
        assert calendar_fired == expected

    @given(ops=_tie_ops)
    def test_nested_scheduling_stays_equivalent(self, ops):
        # Events scheduled from inside callbacks land in the current
        # bucket or later ones; the implementations must still agree.
        def run(queue_kind):
            sched = EventScheduler(queue=queue_kind)
            fired = []

            def make(idx, delay):
                def callback():
                    fired.append(idx)
                    if delay > 0.25:
                        sched.schedule(delay / 2.0,
                                       lambda: fired.append(-idx - 1))
                return callback

            handles = []
            for op in ops:
                if isinstance(op, float):
                    idx = len(handles)
                    handles.append(sched.schedule(op, make(idx, op)))
                elif handles:
                    handles[op % len(handles)].cancel()
            sched.run_until_idle()
            return fired, sched.now

        assert run("calendar") == run("heap")
