"""Serialization contract of forwarding traces.

``to_dict()`` output must survive a JSON round trip byte-identically
(dump -> load -> dump), and ``HopRecord.format()`` is the single
rendering both the pretty trace and the JSONL event form use — pinned
here on the multicast decisions (``vn-replicate`` / ``vn-egress``)
whose hops carry depth and detail annotations.
"""

import json

from repro.net import Domain, Network, Prefix
from repro.net.address import VNAddress
from repro.net.forwarding import (ForwardingEngine, HopRecord, VnEgress,
                                  VnForward, VnReplicate)
from repro.net.node import FibEntry, RouteSource
from repro.net.packet import IPv4Header, vn_packet

GROUP = VNAddress((1 << 62) | 7)


def star_network(n_leaves=3):
    net = Network()
    net.add_domain(Domain(asn=1, name="one",
                          prefix=Prefix.parse("10.1.0.0/16")))
    hub = net.add_router("hub", 1)
    leaves = [net.add_router(f"l{i}", 1) for i in range(n_leaves)]
    for leaf in leaves:
        net.add_link("hub", leaf.node_id)
        hub.fib4.install(FibEntry(prefix=Prefix.host(leaf.ipv4),
                                  next_hop=leaf.node_id,
                                  source=RouteSource.STATIC))
        leaf.fib4.install(FibEntry(prefix=Prefix.host(hub.ipv4),
                                   next_hop="hub",
                                   source=RouteSource.STATIC))
    return net, hub, leaves


def multicast_trace():
    """A replicated delivery exercising vn-replicate and vn-egress.

    The hub forks one copy per leaf (``VnForward``); each leaf then
    exits the vN-Bone towards its own host (``VnEgress``), so both
    decision kinds leave hop records in the branch traces.
    """
    net, hub, leaves = star_network(2)
    hosts = [net.add_host(f"h{i}", 1, leaf.node_id)
             for i, leaf in enumerate(leaves)]
    host_of = {leaf.node_id: host for leaf, host in zip(leaves, hosts)}
    for leaf, host in zip(leaves, hosts):
        host.vn_groups.add(GROUP)
        hub.fib4.install(FibEntry(prefix=Prefix.host(host.ipv4),
                                  next_hop=leaf.node_id,
                                  source=RouteSource.STATIC))
        leaf.fib4.install(FibEntry(prefix=Prefix.host(host.ipv4),
                                   next_hop=host.node_id,
                                   source=RouteSource.STATIC))
    engine = ForwardingEngine(net)

    def handler(node, packet):
        if node.node_id == "hub":
            return VnReplicate(copies=tuple(VnForward(leaf.node_id)
                                            for leaf in leaves),
                               mark_downstream=True)
        return VnEgress(host_of[node.node_id].ipv4)

    engine.register_vn_handler(8, handler)
    for node in net.nodes.values():
        if node.is_router:
            node.set_vn_state(8, object())
    packet = vn_packet(VNAddress(1), GROUP)
    packet.encapsulate(IPv4Header(src=hub.ipv4, dst=hub.ipv4))
    return engine.forward_multicast(packet, "hub"), hosts


def roundtrip(doc):
    first = json.dumps(doc, sort_keys=True)
    second = json.dumps(json.loads(first), sort_keys=True)
    return first, second


class TestToDictRoundTrip:
    def test_forwarding_trace_roundtrips_byte_identical(self):
        trace, _ = multicast_trace()
        branch = trace.branches[0]
        first, second = roundtrip(branch.to_dict())
        assert first == second

    def test_multicast_trace_roundtrips_byte_identical(self):
        trace, hosts = multicast_trace()
        assert trace.delivered_to == {h.node_id for h in hosts}
        first, second = roundtrip(trace.to_dict())
        assert first == second

    def test_rendered_field_matches_format(self):
        trace, _ = multicast_trace()
        for branch in trace.branches:
            for hop, hop_doc in zip(branch.hops,
                                    branch.to_dict()["hops"]):
                assert hop_doc["rendered"] == hop.format()


class TestHopRecordFormat:
    def test_replicate_hop_renders_with_copy_count(self):
        trace, _ = multicast_trace()
        root = trace.branches[0]
        replicate = [hop for hop in root.hops if hop.action == "vn-replicate"]
        assert replicate, "root branch never replicated"
        rendered = replicate[0].format()
        assert rendered.startswith("hub[AS1] vn-replicate")
        assert replicate[0].detail in rendered

    def test_egress_hop_renders_exit_detail(self):
        trace, _ = multicast_trace()
        egress = [hop for branch in trace.branches for hop in branch.hops
                  if hop.action == "vn-egress"]
        assert egress, "no branch exited the vN-Bone"
        rendered = egress[0].format()
        assert "vn-egress" in rendered
        assert "exit vN-Bone" in rendered

    def test_depth_and_fault_annotations(self):
        deep = HopRecord(node_id="r1", domain_id=2, action="ipv4-forward",
                         detail="next x", depth=3, faulted=True)
        rendered = deep.format()
        assert rendered == "r1[AS2] ipv4-forward (next x) [depth=3] [fault]"
        plain = HopRecord(node_id="r1", domain_id=2, action="deliver")
        assert plain.format() == "r1[AS2] deliver"
        assert str(plain) == plain.format()
