"""Unit and property-based tests for the longest-prefix-match trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.address import IPV4_BITS, VN_BITS, IPv4Address, Prefix, VNAddress
from repro.net.errors import AddressError
from repro.net.trie import PrefixTrie


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestBasics:
    def test_empty_trie(self):
        trie = PrefixTrie(IPV4_BITS)
        assert len(trie) == 0
        assert not trie
        assert trie.lookup(IPv4Address(1)) is None

    def test_insert_and_exact_get(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.get(p("10.0.0.0/8")) == "a"
        assert trie.get(p("10.0.0.0/16")) is None

    def test_insert_replaces(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.0.0.0/8"), "b")
        assert trie.get(p("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_longest_prefix_wins(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.0.0.0/8"), "short")
        trie.insert(p("10.1.0.0/16"), "long")
        match = trie.lookup(IPv4Address.parse("10.1.2.3"))
        assert match is not None
        assert match[1] == "long"
        match2 = trie.lookup(IPv4Address.parse("10.2.2.3"))
        assert match2 is not None and match2[1] == "short"

    def test_default_route_matches_everything(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(Prefix(IPv4Address(0), 0), "default")
        match = trie.lookup(IPv4Address.parse("200.1.2.3"))
        assert match is not None and match[1] == "default"

    def test_all_matches_shortest_first(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(Prefix(IPv4Address(0), 0), 0)
        trie.insert(p("10.0.0.0/8"), 8)
        trie.insert(p("10.1.0.0/16"), 16)
        matches = trie.all_matches(IPv4Address.parse("10.1.9.9"))
        assert [value for _, value in matches] == [0, 8, 16]

    def test_remove_and_prune(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.1.0.0/16"), "x")
        assert trie.remove(p("10.1.0.0/16")) == "x"
        assert len(trie) == 0
        assert trie.lookup(IPv4Address.parse("10.1.0.1")) is None

    def test_remove_keeps_shorter_entry(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.0.0.0/8"), "short")
        trie.insert(p("10.1.0.0/16"), "long")
        trie.remove(p("10.1.0.0/16"))
        match = trie.lookup(IPv4Address.parse("10.1.0.1"))
        assert match is not None and match[1] == "short"

    def test_remove_missing_raises(self):
        trie = PrefixTrie(IPV4_BITS)
        with pytest.raises(KeyError):
            trie.remove(p("10.0.0.0/8"))

    def test_contains(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.0.0.0/8"), None)
        assert p("10.0.0.0/8") in trie
        assert p("10.0.0.0/9") not in trie

    def test_family_mismatch_rejected(self):
        trie = PrefixTrie(IPV4_BITS)
        with pytest.raises(AddressError):
            trie.insert(Prefix(VNAddress(1), 64), "x")
        with pytest.raises(AddressError):
            trie.lookup(VNAddress(1))

    def test_vn_family_trie(self):
        trie = PrefixTrie(VN_BITS)
        trie.insert(Prefix(VNAddress(8 << 32), 32), "native")
        match = trie.lookup(VNAddress((8 << 32) | 5))
        assert match is not None and match[1] == "native"

    def test_items_sorted_iteration(self):
        trie = PrefixTrie(IPV4_BITS)
        for text in ["10.0.0.0/8", "9.0.0.0/8", "10.128.0.0/9"]:
            trie.insert(p(text), text)
        assert [str(pfx) for pfx, _ in trie.items()] == [
            "9.0.0.0/8", "10.0.0.0/8", "10.128.0.0/9"]

    def test_clear(self):
        trie = PrefixTrie(IPV4_BITS)
        trie.insert(p("10.0.0.0/8"), 1)
        trie.clear()
        assert len(trie) == 0


# -- property-based: trie vs reference model ---------------------------------

prefixes_st = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
).map(lambda t: Prefix(IPv4Address(t[0]), t[1]))

addresses_st = st.integers(min_value=0, max_value=2**32 - 1).map(IPv4Address)


def reference_lookup(model, address):
    """Longest-match over a plain dict of prefixes."""
    best = None
    for pfx, value in model.items():
        if pfx.contains(address):
            if best is None or pfx.plen > best[0].plen:
                best = (pfx, value)
    return best


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(prefixes_st, st.integers()), max_size=30),
       addresses_st)
def test_lookup_matches_reference_model(entries, address):
    trie = PrefixTrie(IPV4_BITS)
    model = {}
    for pfx, value in entries:
        trie.insert(pfx, value)
        model[pfx] = value
    assert trie.lookup(address) == reference_lookup(model, address)
    assert len(trie) == len(model)


@settings(max_examples=100, deadline=None)
@given(st.lists(prefixes_st, min_size=1, max_size=20, unique=True),
       st.data())
def test_insert_remove_roundtrip(prefixes, data):
    trie = PrefixTrie(IPV4_BITS)
    for index, pfx in enumerate(prefixes):
        trie.insert(pfx, index)
    doomed = data.draw(st.sampled_from(prefixes))
    trie.remove(doomed)
    assert doomed not in trie
    for index, pfx in enumerate(prefixes):
        if pfx != doomed:
            assert trie.get(pfx) == index


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(prefixes_st, st.integers()), max_size=25))
def test_items_roundtrip(entries):
    trie = PrefixTrie(IPV4_BITS)
    model = {}
    for pfx, value in entries:
        trie.insert(pfx, value)
        model[pfx] = value
    assert trie.to_dict() == model
