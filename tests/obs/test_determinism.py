"""Determinism regression: same-seed traced runs are byte-identical.

The trace schema marks every nondeterministic (wall-clock-derived)
field with the ``wall_`` prefix; stripped of those, two runs of the
same experiment at the same seed must produce *identical* event
streams and identical metric counters.  Histograms keep wall timings,
so only counters and gauges are compared.
"""

import pytest

from repro.experiments import run
from repro.obs import Observability, Tracer, strip_wall_fields


def traced_run(seed: int):
    obs = Observability(tracer=Tracer(context={"seed": seed}))
    result = run("anycast_failover", seed=seed, obs=obs)
    obs.close()
    return result, obs


@pytest.mark.slow
class TestTraceDeterminism:
    def test_same_seed_runs_are_byte_identical_modulo_wall(self):
        result_a, obs_a = traced_run(seed=11)
        result_b, obs_b = traced_run(seed=11)
        lines_a = strip_wall_fields(obs_a.tracer.lines())
        lines_b = strip_wall_fields(obs_b.tracer.lines())
        assert lines_a == lines_b
        snap_a, snap_b = obs_a.metrics_summary(), obs_b.metrics_summary()
        assert snap_a["counters"] == snap_b["counters"]
        assert snap_a["gauges"] == snap_b["gauges"]
        # The structured results agree too (modulo the metrics, which
        # embed wall-clock histograms).
        dict_a, dict_b = result_a.to_dict(), result_b.to_dict()
        dict_a.pop("metrics"), dict_b.pop("metrics")
        assert dict_a == dict_b

    def test_different_seeds_diverge(self):
        _, obs_a = traced_run(seed=11)
        _, obs_b = traced_run(seed=12)
        assert (strip_wall_fields(obs_a.tracer.lines())
                != strip_wall_fields(obs_b.tracer.lines()))
