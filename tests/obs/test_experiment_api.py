"""The redesigned experiment run API: seed/params threading, obs binding,
the deprecation shim for zero-arg runners, and the to_dict contract."""

import json

import pytest

from repro.experiments import ExperimentResult, run
from repro.experiments.base import (ExperimentInfo, _threadable_kwargs,
                                    register, _REGISTRY)
from repro.obs import NULL_OBS, Observability, Tracer, get_obs, observing


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway experiments without leaking them."""
    added = []

    def scratch_register(experiment_id, description, runner):
        register(experiment_id, description)(runner)
        added.append(experiment_id)
        return _REGISTRY[experiment_id]

    yield scratch_register
    for experiment_id in added:
        _REGISTRY.pop(experiment_id, None)


def make_result(experiment_id="tmp", **kwargs):
    return ExperimentResult(experiment_id=experiment_id, title="t",
                            header="h", rows=["r"], data={}, **kwargs)


class TestKwargThreading:
    def test_signature_detection(self):
        assert _threadable_kwargs(lambda: None) == frozenset()
        assert _threadable_kwargs(lambda seed=0: None) == {"seed"}
        assert (_threadable_kwargs(lambda seed=0, params=None: None)
                == {"seed", "params"})
        assert (_threadable_kwargs(lambda **kwargs: None)
                == {"seed", "params"})

    def test_new_style_runner_receives_seed_and_params(self, scratch_registry):
        seen = {}

        def runner(seed=0, params=None):
            seen.update(seed=seed, params=params)
            return make_result(seed=seed, params=dict(params or {}))

        scratch_registry("tmp_new", "new-style", runner)
        result = run("tmp_new", seed=42, params={"k": 1})
        assert seen == {"seed": 42, "params": {"k": 1}}
        assert result.seed == 42
        assert result.params == {"k": 1}

    def test_zero_arg_runner_warns_and_drops(self, scratch_registry):
        scratch_registry("tmp_old", "zero-arg", lambda: make_result())
        with pytest.warns(DeprecationWarning, match="zero-arg"):
            result = run("tmp_old", seed=3)
        # run() still stamps what the caller asked for.
        assert result.seed == 3

    def test_zero_arg_runner_without_kwargs_is_silent(self, scratch_registry):
        scratch_registry("tmp_quiet", "zero-arg", lambda: make_result())
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run("tmp_quiet")


class TestObsBinding:
    def test_runner_sees_active_obs(self, scratch_registry):
        seen = {}

        def runner():
            seen["obs"] = get_obs()
            return make_result()

        scratch_registry("tmp_obs", "obs capture", runner)
        obs = Observability()
        run("tmp_obs", obs=obs)
        assert seen["obs"] is obs
        assert get_obs() is NULL_OBS  # restored afterwards

    def test_result_stamped_with_metrics_and_trace(self, scratch_registry):
        def runner():
            get_obs().counter("tmp.widgets").inc(5)
            return make_result()

        scratch_registry("tmp_metrics", "metrics stamping", runner)
        obs = Observability(tracer=Tracer(context={"seed": 0}))
        result = run("tmp_metrics", obs=obs)
        assert result.metrics["counters"]["tmp.widgets"] == 5
        assert result.trace_path is None  # in-memory tracer has no path
        kinds = [e["kind"] for e in obs.tracer.events()]
        assert "experiment.start" in kinds and "experiment.end" in kinds

    def test_without_obs_nothing_is_stamped(self, scratch_registry):
        scratch_registry("tmp_plain", "no obs", lambda: make_result())
        result = run("tmp_plain")
        assert result.metrics == {}
        assert result.trace_path is None


class TestResultSerialization:
    def test_to_dict_contract(self):
        result = make_result(seed=7, params={"a": 1},
                             metrics={"counters": {"c": 1}})
        data = result.to_dict()
        assert data["experiment_id"] == "tmp"
        assert data["seed"] == 7
        assert data["params"] == {"a": 1}
        assert data["metrics"] == {"counters": {"c": 1}}
        json.dumps(data)  # JSON-safe by contract

    def test_to_json_round_trips(self):
        result = make_result()
        assert json.loads(result.to_json())["experiment_id"] == "tmp"

    def test_data_is_json_safed(self):
        result = make_result()
        result.data = {"members": {"b", "a"}}
        assert result.to_dict()["data"] == {"members": ["a", "b"]}


class TestRegistryInfo:
    def test_registered_info_records_accepts(self):
        info = _REGISTRY["anycast_failover"]
        assert isinstance(info, ExperimentInfo)
        assert info.accepts == {"seed", "params"}

    def test_legacy_experiments_accept_nothing(self):
        assert _REGISTRY["F1"].accepts == frozenset()
