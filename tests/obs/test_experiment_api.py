"""The workload-spec API: registration contracts, param schemas, obs
binding, the ``repro.experiment/v1`` document, and per-id isolation."""

import json

import pytest

from repro.experiments import ExperimentResult, run, run_many
from repro.experiments.base import (EXPERIMENT_SCHEMA, Param, RunOutcome,
                                    WorkloadSpec, _REGISTRY, all_specs,
                                    format_error, get_spec, register,
                                    validate_experiment_dict)
from repro.net.errors import ReproError, WorkloadError
from repro.obs import NULL_OBS, Observability, Tracer, get_obs


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway experiments without leaking them."""
    added = []

    def scratch_register(experiment_id, description, runner, **kwargs):
        register(experiment_id, description, **kwargs)(runner)
        added.append(experiment_id)
        return _REGISTRY[experiment_id]

    yield scratch_register
    for experiment_id in added:
        _REGISTRY.pop(experiment_id, None)


def make_result(experiment_id="tmp", **kwargs):
    return ExperimentResult(experiment_id=experiment_id, title="t",
                            header="h", rows=["r"], data={}, **kwargs)


class TestRunnerSignatureContract:
    def test_seed_and_params_thread_through(self, scratch_registry):
        seen = {}

        def runner(seed=0, params=None):
            seen.update(seed=seed, params=params)
            return make_result(seed=seed, params=dict(params or {}))

        scratch_registry("tmp_new", "new-style", runner)
        result = run("tmp_new", seed=42, params={"k": 1})
        assert seen == {"seed": 42, "params": {"k": 1}}
        assert result.seed == 42
        assert result.params == {"k": 1}

    def test_zero_arg_runner_is_rejected_at_registration(self):
        with pytest.raises(WorkloadError, match="seed, params"):
            register("tmp_zero", "zero-arg")(lambda: make_result())
        assert "tmp_zero" not in _REGISTRY

    def test_seed_only_runner_is_rejected(self):
        with pytest.raises(WorkloadError, match="params"):
            register("tmp_half", "seed only")(lambda seed=0: make_result())

    def test_var_keyword_runner_is_accepted(self, scratch_registry):
        scratch_registry("tmp_var", "kwargs",
                         lambda **kwargs: make_result(**kwargs))
        assert run("tmp_var", seed=5).seed == 5

    def test_keyword_only_runner_is_accepted(self, scratch_registry):
        def runner(*, seed=0, params=None):
            return make_result(seed=seed)

        scratch_registry("tmp_kwonly", "kw-only", runner)
        assert run("tmp_kwonly", seed=9).seed == 9

    def test_defaults_apply_when_caller_passes_nothing(self, scratch_registry):
        def runner(seed=31, params=None):
            return make_result(seed=seed)

        scratch_registry("tmp_default", "default seed", runner)
        assert run("tmp_default").seed == 31


class TestParamSchema:
    def test_param_kind_is_checked(self):
        with pytest.raises(WorkloadError, match="unknown param kind"):
            Param("complex", 1)
        with pytest.raises(WorkloadError, match="not a int"):
            Param("int", "three")

    def test_float_accepts_int_but_not_bool(self):
        param = Param("float", 1.5)
        assert param.accepts(2)
        assert not param.accepts(True)

    def test_unknown_param_is_rejected_before_running(self, scratch_registry):
        calls = []

        def runner(seed=0, params=None):
            calls.append(1)
            return make_result()

        scratch_registry("tmp_schema", "schema", runner,
                         params={"sample": Param("int", 10, "pairs")})
        with pytest.raises(WorkloadError, match="unknown param 'bogus'"):
            run("tmp_schema", params={"bogus": 1})
        with pytest.raises(WorkloadError, match="expects int"):
            run("tmp_schema", params={"sample": "ten"})
        assert calls == []  # validation happens before any work

    def test_unconstrained_spec_accepts_anything(self, scratch_registry):
        scratch_registry("tmp_free", "unconstrained",
                         lambda seed=0, params=None: make_result())
        spec = get_spec("tmp_free")
        assert spec.params is None
        assert spec.validate_params({"whatever": object()}) == []

    def test_defaults_and_resolution(self):
        spec = WorkloadSpec(
            workload_id="w", description="d",
            runner=lambda seed=0, params=None: make_result(),
            params={"a": Param("int", 1), "b": Param("str", "x")})
        assert spec.default_params() == {"a": 1, "b": "x"}
        assert spec.resolve_params({"a": 5}) == {"a": 5, "b": "x"}

    def test_every_registered_spec_validates_its_own_defaults(self):
        for spec in all_specs():
            assert spec.validate_params(spec.default_params()) == [], \
                spec.workload_id


class TestObsBinding:
    def test_runner_sees_active_obs(self, scratch_registry):
        seen = {}

        def runner(seed=0, params=None):
            seen["obs"] = get_obs()
            return make_result()

        scratch_registry("tmp_obs", "obs capture", runner)
        obs = Observability()
        run("tmp_obs", obs=obs)
        assert seen["obs"] is obs
        assert get_obs() is NULL_OBS  # restored afterwards

    def test_result_stamped_with_metrics_and_trace(self, scratch_registry):
        def runner(seed=0, params=None):
            get_obs().counter("tmp.widgets").inc(5)
            return make_result()

        scratch_registry("tmp_metrics", "metrics stamping", runner)
        obs = Observability(tracer=Tracer(context={"seed": 0}))
        result = run("tmp_metrics", obs=obs)
        assert result.metrics["counters"]["tmp.widgets"] == 5
        assert result.trace_path is None  # in-memory tracer has no path
        kinds = [e["kind"] for e in obs.tracer.events()]
        assert "experiment.start" in kinds and "experiment.end" in kinds

    def test_without_obs_nothing_is_stamped(self, scratch_registry):
        scratch_registry("tmp_plain", "no obs",
                         lambda seed=0, params=None: make_result())
        result = run("tmp_plain")
        assert result.metrics == {}
        assert result.trace_path is None


class TestResultSerialization:
    def test_to_dict_carries_the_schema_tag(self):
        result = make_result(seed=7, params={"a": 1},
                             metrics={"counters": {"c": 1}})
        data = result.to_dict()
        assert data["schema"] == EXPERIMENT_SCHEMA
        assert data["experiment_id"] == "tmp"
        assert data["seed"] == 7
        assert data["params"] == {"a": 1}
        assert data["metrics"] == {"counters": {"c": 1}}
        json.dumps(data)  # JSON-safe by contract

    def test_to_dict_validates(self):
        assert validate_experiment_dict(make_result().to_dict()) == []

    def test_validator_catches_problems(self):
        doc = make_result().to_dict()
        doc["schema"] = "repro.experiment/v0"
        doc["rows"] = [1, 2]
        del doc["seed"]
        problems = "; ".join(validate_experiment_dict(doc))
        assert "schema" in problems
        assert "rows" in problems
        assert "seed: missing" in problems
        assert validate_experiment_dict("nope") != []

    def test_to_json_round_trips(self):
        result = make_result()
        assert json.loads(result.to_json())["experiment_id"] == "tmp"

    def test_data_is_json_safed(self):
        result = make_result()
        result.data = {"members": {"b", "a"}}
        assert result.to_dict()["data"] == {"members": ["a", "b"]}


class TestRunMany:
    def test_failures_are_isolated_per_id(self, scratch_registry):
        def boom(seed=0, params=None):
            raise ReproError("kaboom")

        scratch_registry("tmp_boom", "always fails", boom)
        scratch_registry("tmp_fine", "succeeds",
                         lambda seed=0, params=None: make_result())
        outcomes = run_many(["tmp_fine", "tmp_boom", "nonexistent"])
        assert [o.experiment_id for o in outcomes] == [
            "tmp_fine", "tmp_boom", "nonexistent"]
        assert [o.ok for o in outcomes] == [True, False, False]
        assert outcomes[1].error == "ReproError: kaboom"
        assert "unknown experiment" in outcomes[2].error

    def test_outcome_to_dict(self):
        outcome = RunOutcome(experiment_id="x", result=make_result())
        doc = outcome.to_dict()
        assert doc["ok"] is True
        assert doc["result"]["schema"] == EXPERIMENT_SCHEMA
        failed = RunOutcome(experiment_id="y", error="ValueError: no")
        assert failed.to_dict() == {"experiment_id": "y", "ok": False,
                                    "result": None, "error": "ValueError: no"}

    def test_format_error_is_deterministic(self):
        assert format_error(ValueError("bad")) == "ValueError: bad"


class TestRegistrySpecs:
    def test_registered_specs_are_workload_specs(self):
        spec = get_spec("anycast_failover")
        assert isinstance(spec, WorkloadSpec)
        assert "faults" in spec.tags
        assert spec.artifact_schema == EXPERIMENT_SCHEMA
        assert set(spec.params) >= {"n_stub", "pairs", "crash_at"}

    def test_figures_carry_the_figure_tag(self):
        assert "figure" in get_spec("F1").tags

    def test_bench_workloads_register_through_the_same_surface(self):
        spec = get_spec("bench_converge")
        assert "bench" in spec.tags
        assert spec.params == {"quick": Param("bool", False,
                                              "small topology / fewer "
                                              "samples")}
