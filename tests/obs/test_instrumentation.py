"""Instrumented hot paths feed the registry and tracer end to end."""

import pytest

from repro.core.orchestrator import Orchestrator
from repro.net.packet import ipv4_packet
from repro.net.simulator import EventScheduler
from repro.obs import Observability, Tracer, observing

from tests.conftest import build_two_domain_network


@pytest.fixture
def obs():
    return Observability(tracer=Tracer(context={"seed": 0}))


def kinds(obs):
    obs.close()
    return [event["kind"] for event in obs.tracer.events()]


class TestSchedulerInstrumentation:
    def test_counters_track_lifecycle(self, obs):
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        handle = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        scheduler.run_until_idle()
        counters = obs.metrics_summary()["counters"]
        assert counters["scheduler.events_scheduled"] == 2
        assert counters["scheduler.events_cancelled"] == 1
        assert counters["scheduler.events_fired"] == 1
        gauges = obs.metrics_summary()["gauges"]
        assert gauges["scheduler.queue_depth_max"] == 2.0
        assert "scheduler.drain" in kinds(obs)

    def test_disabled_obs_records_nothing(self):
        # Construction caches zero-valued counter handles; the disabled
        # guard must keep every one of them at zero afterwards.
        obs = Observability.disabled()
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        snapshot = obs.metrics_summary()
        assert all(value == 0 for value in snapshot["counters"].values())
        assert snapshot["histograms"] == {}


class TestControlPlaneInstrumentation:
    def test_convergence_emits_spf_and_flood_counters(self, obs):
        network = build_two_domain_network()
        with observing(obs):
            orch = Orchestrator(network, seed=0)
            orch.converge()
        counters = obs.metrics_summary()["counters"]
        assert counters["igp.ls.spf_runs"] > 0
        assert counters["igp.ls.lsa_originations"] > 0
        assert counters["igp.ls.messages_sent"] > 0
        assert counters["bgp.announcements"] > 0
        assert counters["orchestrator.convergences"] == 1
        emitted = kinds(obs)
        assert "topology" in emitted
        assert "orchestrator.converge" in emitted

    def test_forwarding_outcome_counters(self, obs):
        network = build_two_domain_network()
        with observing(obs):
            orch = Orchestrator(network, seed=0)
        orch.converge()
        src, dst = network.node("h1"), network.node("h2")
        trace = orch.forward(ipv4_packet(src.ipv4, dst.ipv4), "h1")
        assert trace.delivered
        counters = obs.metrics_summary()["counters"]
        assert counters["forwarding.outcome.delivered"] == 1
        hist = obs.metrics_summary()["histograms"]
        assert hist["forwarding.physical_hops"]["count"] == 1.0
        obs.close()
        forward_events = [e for e in obs.tracer.events()
                          if e["kind"] == "forward"]
        assert forward_events[0]["outcome"] == "delivered"
        assert forward_events[0]["hops"]  # rendered hop strings
