"""The ``python -m repro obs`` subcommand."""

import json

import pytest

from repro.cli import main


@pytest.mark.slow
class TestObsCommand:
    def test_traced_run_prints_summary_and_valid_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        code = main(["obs", "anycast_failover", "--trace", trace,
                     "--seed", "7"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["experiment_id"] == "anycast_failover"
        assert summary["seed"] == 7
        assert summary["trace_valid"] is True
        assert summary["trace_path"] == trace
        counters = summary["metrics"]["counters"]
        assert counters["scheduler.events_fired"] > 0
        assert counters["igp.ls.spf_runs"] > 0
        assert counters["forwarding.outcome.delivered"] > 0
        # The file really is line-delimited JSON with the run header.
        first = json.loads((tmp_path / "run.jsonl").read_text()
                           .splitlines()[0])
        assert first["kind"] == "run.start"
        assert first["context"]["experiment"] == "anycast_failover"

    def test_params_thread_through(self, tmp_path, capsys):
        code = main(["obs", "anycast_failover", "--seed", "7",
                     "--param", "pairs=6"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["params"] == {"pairs": 6}
        assert summary["data"]["final"]["attempted"] == 6

    def test_self_check(self, capsys):
        assert main(["obs", "--self-check"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["ok"] is True
        assert status["trace_events"] > 0


class TestObsCommandFastPaths:
    def test_list(self, capsys):
        assert main(["obs", "--list"]) == 0
        out = capsys.readouterr().out
        assert "anycast_failover" in out

    def test_no_id_is_an_error(self, capsys):
        assert main(["obs"]) == 2

    def test_bad_param_syntax(self):
        with pytest.raises(SystemExit):
            main(["obs", "anycast_failover", "--param", "nonsense"])
