"""Timing probes: live spans record, disabled spans are shared no-ops."""

from repro.obs import NULL_OBS, NULL_PROBE, Observability, Tracer


class TestDisabledProbe:
    def test_disabled_obs_returns_shared_null_probe(self):
        obs = Observability.disabled()
        assert obs.probe("anything") is NULL_PROBE
        assert NULL_OBS.probe("x", asn=7) is NULL_PROBE

    def test_null_probe_is_a_silent_context_manager(self):
        obs = Observability.disabled()
        with obs.probe("quiet") as span:
            assert span is NULL_PROBE
        # The span recorded nothing into the disabled handle's registry.
        assert obs.metrics_summary()["histograms"] == {}


class TestLiveProbe:
    def test_records_histogram_and_event(self):
        obs = Observability(tracer=Tracer(context={"seed": 0}))
        with obs.probe("rebuild", asn=7) as span:
            pass
        assert span.wall_ms is not None and span.wall_ms >= 0.0
        hist = obs.metrics_summary()["histograms"]["probe.rebuild_wall_ms"]
        assert hist["count"] == 1.0
        obs.close()
        probe_events = [e for e in obs.tracer.events() if e["kind"] == "probe"]
        assert len(probe_events) == 1
        assert probe_events[0]["name"] == "rebuild"
        assert probe_events[0]["asn"] == 7
        assert isinstance(probe_events[0]["wall_ms"], float)

    def test_distinct_probes_accumulate_in_one_histogram(self):
        obs = Observability()
        for _ in range(3):
            with obs.probe("step"):
                pass
        hist = obs.metrics_summary()["histograms"]["probe.step_wall_ms"]
        assert hist["count"] == 3.0
