"""Registry semantics: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.obs import Registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = Registry()
        counter = registry.counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_create_on_first_use_returns_same_object(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")


class TestGauge:
    def test_set_and_set_max(self):
        gauge = Registry().gauge("depth")
        gauge.set(3.0)
        assert gauge.value == 3.0
        gauge.set_max(2.0)
        assert gauge.value == 3.0  # high-water mark keeps the max
        gauge.set_max(7.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_streaming_summary(self):
        hist = Registry().histogram("h")
        for value in (2.0, 8.0, 5.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3.0
        assert summary["total"] == 15.0
        assert summary["mean"] == 5.0
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        # population stddev of (2, 8, 5) = sqrt(6)
        assert summary["stddev"] == pytest.approx(6.0 ** 0.5)

    def test_empty_summary_is_zeroes(self):
        summary = Registry().histogram("h").summary()
        assert summary == {"count": 0.0, "total": 0.0, "mean": 0.0,
                           "stddev": 0.0, "min": 0.0, "max": 0.0}


class TestSnapshot:
    def test_structure_and_sorted_keys(self):
        registry = Registry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 2, "b": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1.0

    def test_snapshot_is_json_safe(self):
        registry = Registry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.5)
        json.dumps(registry.snapshot())  # must not raise

    def test_reset_clears_everything(self):
        registry = Registry()
        registry.counter("c").inc()
        registry.gauge("g").set(9.0)
        registry.histogram("h").observe(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
