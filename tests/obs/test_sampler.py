"""Periodic gauge sampling: lazy, scheduler-driven, deterministic."""

import pytest

from repro.net.simulator import EventScheduler
from repro.obs import METRIC_SAMPLE, Observability, Tracer, observing


def traced_obs():
    return Observability(tracer=Tracer(context={"seed": 0}))


def samples(obs):
    obs.close()
    return [event for event in obs.tracer.events()
            if event["kind"] == METRIC_SAMPLE]


class TestSamplerConstruction:
    def test_non_positive_interval_is_rejected(self):
        obs = traced_obs()
        with pytest.raises(ValueError):
            obs.sampler(0.0)
        with pytest.raises(ValueError):
            obs.sampler(-1.0)


class TestSchedulerDriven:
    def test_samples_at_interval_ticks(self):
        obs = traced_obs()
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        scheduler.attach_sampler(obs.sampler(10.0))
        scheduler.schedule(25.0, lambda: None)
        scheduler.run_until_idle()
        ticks = samples(obs)
        assert [event["t"] for event in ticks] == [0.0, 10.0, 20.0]
        assert [event["sample"] for event in ticks] == [0, 1, 2]

    def test_payload_is_counters_and_gauges(self):
        obs = traced_obs()
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        scheduler.attach_sampler(obs.sampler(5.0))
        scheduler.schedule(5.0, lambda: None)
        scheduler.run_until_idle()
        tick = samples(obs)[-1]
        assert "scheduler.events_scheduled" in tick["counters"]
        assert "scheduler.queue_depth_max" in tick["gauges"]
        # Histograms aggregate wall-clock timings; the deterministic
        # sample stream must not carry them.
        assert "histograms" not in tick

    def test_sampler_adds_no_queue_events(self):
        # The sampler is driven lazily from step()/run_until(), so the
        # queue still drains to idle and event counters see nothing.
        obs = traced_obs()
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        scheduler.attach_sampler(obs.sampler(1.0))
        scheduler.schedule(3.0, lambda: None)
        scheduler.run_until_idle()
        counters = obs.metrics_summary()["counters"]
        assert counters["scheduler.events_scheduled"] == 1
        assert counters["scheduler.events_fired"] == 1

    def test_run_until_advances_ticks_without_events(self):
        obs = traced_obs()
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        scheduler.attach_sampler(obs.sampler(10.0))
        scheduler.run_until(35.0)
        assert [event["t"] for event in samples(obs)] == [0.0, 10.0, 20.0,
                                                          30.0]

    def test_disabled_obs_emits_nothing(self):
        obs = Observability.disabled()
        with observing(obs):
            scheduler = EventScheduler(seed=1)
        sampler = obs.sampler(1.0)
        scheduler.attach_sampler(sampler)
        scheduler.schedule(5.0, lambda: None)
        scheduler.run_until_idle()
        assert sampler.samples == 0

    def test_same_seed_sample_streams_are_identical(self):
        def run():
            obs = traced_obs()
            with observing(obs):
                scheduler = EventScheduler(seed=3)
            scheduler.attach_sampler(obs.sampler(2.0))
            counter = obs.counter("work.done")
            for t in (1.0, 4.0, 9.0):
                scheduler.schedule(t, counter.inc)
            scheduler.run_until_idle()
            return samples(obs)

        assert run() == run()
