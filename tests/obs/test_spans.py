"""Causal spans: deterministic IDs, nesting, propagation, validation."""

import json

import pytest

from repro.obs import NULL_SPAN, Observability, SpanContext, Tracer, observing
from repro.obs.spans import (validate_span_events, validate_span_lines,
                             validate_spans)


def traced_obs():
    return Observability(tracer=Tracer(context={"seed": 0}))


def span_events(obs):
    obs.close()
    return [event for event in obs.tracer.events()
            if event["kind"] in ("span.start", "span.end")]


class TestIdDeterminism:
    def test_ids_come_from_per_handle_counters(self):
        obs = traced_obs()
        with obs.span("outer"):
            obs.span("inner").end()
        events = span_events(obs)
        assert [e["span_id"] for e in events] == ["s000001", "s000002",
                                                 "s000002", "s000001"]
        assert all(e["trace_id"] == "t0001" for e in events)

    def test_two_fresh_handles_allocate_identical_sequences(self):
        def run(obs):
            with obs.span("a"):
                obs.span("b").end()
            obs.span("c").end()
            return span_events(obs)

        assert run(traced_obs()) == run(traced_obs())

    def test_each_root_span_opens_a_new_trace(self):
        obs = traced_obs()
        obs.span("first").end()
        obs.span("second").end()
        starts = [e for e in span_events(obs) if e["kind"] == "span.start"]
        assert [e["trace_id"] for e in starts] == ["t0001", "t0002"]


class TestNestingAndParents:
    def test_entered_span_becomes_parent_of_nested_spans(self):
        obs = traced_obs()
        with obs.span("parent") as parent:
            obs.span("child").end()
        events = span_events(obs)
        child_start = next(e for e in events if e.get("name") == "child"
                           and e["kind"] == "span.start")
        assert child_start["parent_id"] == parent.context.span_id
        parent_start = next(e for e in events if e.get("name") == "parent"
                            and e["kind"] == "span.start")
        assert "parent_id" not in parent_start

    def test_explicit_parent_span_and_context(self):
        obs = traced_obs()
        root = obs.span("root").start()
        via_span = obs.span("via-span", parent=root)
        via_ctx = obs.span("via-ctx", parent=root.context)
        via_span.end()
        via_ctx.end()
        root.end()
        starts = {e["name"]: e for e in span_events(obs)
                  if e["kind"] == "span.start"}
        assert starts["via-span"]["parent_id"] == root.context.span_id
        assert starts["via-ctx"]["parent_id"] == root.context.span_id
        assert starts["via-ctx"]["trace_id"] == root.context.trace_id

    def test_bad_parent_type_raises(self):
        obs = traced_obs()
        with pytest.raises(TypeError):
            obs.span("x", parent="s000001")

    def test_propagated_context_parents_scheduled_work(self):
        # The scheduler carrier: push a context, open a span, pop.
        obs = traced_obs()
        ctx = SpanContext("t0042", "s000042")
        obs.push_span_context(ctx)
        try:
            obs.span("carried").end()
        finally:
            obs.pop_span_context()
        start = span_events(obs)[0]
        assert start["parent_id"] == "s000042"
        assert start["trace_id"] == "t0042"


class TestLifecycle:
    def test_end_forces_start_first(self):
        obs = traced_obs()
        obs.span("lazy").end(t=3.0, outcome="done")
        events = span_events(obs)
        assert [e["kind"] for e in events] == ["span.start", "span.end"]
        assert events[1]["outcome"] == "done"
        assert events[1]["t"] == 3.0

    def test_start_and_end_are_idempotent(self):
        obs = traced_obs()
        span = obs.span("once")
        span.start().start()
        span.end()
        span.end()
        assert len(span_events(obs)) == 2

    def test_annotations_land_on_the_end_event(self):
        obs = traced_obs()
        span = obs.span("annotated")
        span.annotate(members=3)
        span.end(tunnels=2)
        end = span_events(obs)[-1]
        assert end["members"] == 3
        assert end["tunnels"] == 2

    def test_exception_inside_with_block_annotates_and_ends(self):
        obs = traced_obs()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        end = span_events(obs)[-1]
        assert end["kind"] == "span.end"
        assert end["error"] == "ValueError"

    def test_disabled_handle_returns_the_shared_null_span(self):
        obs = Observability.disabled()
        span = obs.span("nope", parent=None)
        assert span is NULL_SPAN
        assert span.context is None
        with span:
            span.annotate(x=1)
        span.end()

    def test_null_span_as_parent_starts_a_new_trace(self):
        # A disabled subsystem handing its NULL_SPAN downstream must not
        # corrupt an enabled handle: context is None -> new root.
        obs = traced_obs()
        obs.span("root", parent=NULL_SPAN).end()
        start = span_events(obs)[0]
        assert "parent_id" not in start


class TestValidator:
    def test_clean_stream_validates(self):
        obs = traced_obs()
        with obs.span("outer"):
            obs.span("inner").end()
        obs.close()
        assert validate_span_events(obs.tracer.events()) == []

    def test_unclosed_spans_are_legal(self):
        obs = traced_obs()
        obs.span("holddown").start()
        obs.close()
        assert validate_span_events(obs.tracer.events()) == []

    def test_orphan_parent_is_reported(self):
        events = [{"kind": "span.start", "name": "x", "span_id": "s000002",
                   "trace_id": "t0001", "parent_id": "s000001"}]
        problems = validate_span_events(events)
        assert any("orphan parent_id" in p for p in problems)

    def test_end_without_start_is_reported(self):
        events = [{"kind": "span.end", "name": "x", "span_id": "s000001",
                   "trace_id": "t0001"}]
        problems = validate_span_events(events)
        assert any("without a matching span.start" in p for p in problems)

    def test_duplicate_start_and_end_are_reported(self):
        start = {"kind": "span.start", "name": "x", "span_id": "s000001",
                 "trace_id": "t0001"}
        end = {"kind": "span.end", "name": "x", "span_id": "s000001",
               "trace_id": "t0001"}
        problems = validate_span_events([start, start, end, end])
        assert any("duplicate span.start" in p for p in problems)
        assert any("duplicate span.end" in p for p in problems)

    def test_trace_id_mismatch_with_parent_is_reported(self):
        events = [
            {"kind": "span.start", "name": "a", "span_id": "s000001",
             "trace_id": "t0001"},
            {"kind": "span.start", "name": "b", "span_id": "s000002",
             "trace_id": "t0002", "parent_id": "s000001"},
        ]
        problems = validate_span_events(events)
        assert any("trace_id" in p for p in problems)

    def test_validate_span_lines_skips_non_json(self):
        obs = traced_obs()
        obs.span("ok").end()
        obs.close()
        lines = ["not json"] + obs.tracer.lines()
        assert validate_span_lines(lines) == []

    def test_validate_spans_streams_a_file(self, tmp_path):
        obs = traced_obs()
        with obs.span("outer"):
            obs.span("inner").end()
        obs.close()
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(obs.tracer.lines()) + "\n",
                        encoding="utf-8")
        assert validate_spans(str(path)) == []

    def test_span_events_are_json_lines(self):
        obs = traced_obs()
        with obs.span("outer", epoch=0):
            pass
        obs.close()
        for line in obs.tracer.lines():
            json.loads(line)
