"""Tracer JSONL round-trip, schema validation, wall-field stripping."""

import enum
import json

import pytest

from repro.obs import (RUN_END, RUN_START, Tracer, json_safe,
                       strip_wall_fields, validate_trace,
                       validate_trace_lines)


class TestInMemoryTracer:
    def test_header_events_footer_roundtrip(self):
        tracer = Tracer(context={"seed": 7, "experiment": "x"})
        tracer.emit("alpha", t=1.0, value=3)
        tracer.emit("beta", nested={"k": [1, 2]})
        tracer.close()
        events = tracer.events()
        assert [e["kind"] for e in events] == [RUN_START, "alpha", "beta",
                                               RUN_END]
        assert events[0]["context"] == {"seed": 7, "experiment": "x"}
        assert events[1]["t"] == 1.0 and events[1]["value"] == 3
        assert events[2]["nested"] == {"k": [1, 2]}
        assert events[-1]["events"] == 2

    def test_seq_consecutive_and_sorted_keys(self):
        tracer = Tracer()
        tracer.emit("e", zebra=1, apple=2)
        tracer.close()
        lines = tracer.lines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1, 2]
        parsed = json.loads(lines[1])
        assert list(parsed) == sorted(parsed)

    def test_emit_after_close_is_dropped(self):
        tracer = Tracer()
        tracer.emit("e")
        tracer.close()
        tracer.emit("late")
        assert len(tracer.lines()) == 3  # start, e, end — no 'late'

    def test_validates_clean(self):
        tracer = Tracer(context={"seed": 0})
        tracer.emit("e", t=2.5, wall_ms=1.0)
        tracer.close()
        assert validate_trace_lines(tracer.lines()) == []


class TestFileTracer:
    def test_writes_valid_jsonl_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(path, context={"seed": 3}) as tracer:
            tracer.emit("e", t=0.0)
        assert validate_trace(path) == []
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["kind"] == RUN_START

    def test_lines_rejected_on_file_tracers(self, tmp_path):
        tracer = Tracer(str(tmp_path / "t.jsonl"))
        tracer.close()
        with pytest.raises(ValueError):
            tracer.lines()


class TestDurableClose:
    def test_failed_footer_write_still_closes_the_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path, context={"seed": 0})
        tracer.emit("e", t=0.0)
        fh = tracer._fh
        original_write = tracer._write

        def failing_write(record):
            raise OSError("disk full")

        tracer._write = failing_write
        with pytest.raises(OSError):
            tracer.close()
        assert fh.closed
        assert tracer._fh is None
        # close() is idempotent even after the failure.
        tracer._write = original_write
        tracer.close()

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path, context={"seed": 0})
        tracer.close()
        tracer.close()
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [RUN_START,
                                                                RUN_END]


class TestStreamingValidation:
    def test_validate_trace_streams_from_the_file_handle(self, tmp_path):
        # validate_trace consumes the open handle line by line; feeding
        # it a generator (not a materialized list) must work because
        # that is exactly what a file handle is.
        path = tmp_path / "trace.jsonl"
        with Tracer(str(path), context={"seed": 1}) as tracer:
            for n in range(100):
                tracer.emit("e", t=float(n))
        assert validate_trace(str(path)) == []

        def one_shot_lines():
            with path.open(encoding="utf-8") as fh:
                for line in fh:
                    yield line

        assert validate_trace_lines(one_shot_lines()) == []

    def test_unknown_schema_is_rejected(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {},
                             "schema": "repro.trace/v99"})]
        errors = validate_trace_lines(lines)
        assert any("unknown trace schema" in error for error in errors)

    def test_v1_streams_without_schema_field_still_validate(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": RUN_END, "seq": 1, "events": 0})]
        assert validate_trace_lines(lines) == []

    def test_span_events_need_string_ids(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": "span.start", "seq": 1, "name": "x",
                             "span_id": 7, "trace_id": "t0001"})]
        errors = validate_trace_lines(lines)
        assert any("span_id" in error for error in errors)


class TestValidation:
    def test_rejects_bad_json(self):
        assert validate_trace_lines(["not json"])

    def test_rejects_missing_header(self):
        line = json.dumps({"kind": "e", "seq": 0})
        errors = validate_trace_lines([line])
        assert any(RUN_START in error for error in errors)

    def test_rejects_gapped_seq(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": "e", "seq": 5})]
        errors = validate_trace_lines(lines)
        assert any("seq" in error for error in errors)

    def test_rejects_events_after_run_end(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": RUN_END, "seq": 1, "events": 0}),
                 json.dumps({"kind": "late", "seq": 2})]
        errors = validate_trace_lines(lines)
        assert any(RUN_END in error for error in errors)

    def test_rejects_non_numeric_wall_field(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": "e", "seq": 1, "wall_ms": "slow"})]
        errors = validate_trace_lines(lines)
        assert any("wall_ms" in error for error in errors)

    def test_rejects_empty_trace(self):
        assert validate_trace_lines([]) == ["trace is empty"]


class TestStripWallFields:
    def test_removes_only_wall_prefixed_keys(self):
        line = json.dumps({"kind": "e", "seq": 1, "t": 2.0,
                           "wall_ms": 17.3, "value": 4})
        stripped = json.loads(strip_wall_fields([line])[0])
        assert "wall_ms" not in stripped
        assert stripped["t"] == 2.0 and stripped["value"] == 4


class TestJsonSafe:
    def test_conversions(self):
        class Color(enum.Enum):
            RED = "red"

        class WithDict:
            def to_dict(self):
                return {"inner": {1, 3, 2}}

        assert json_safe(Color.RED) == "red"
        assert json_safe({"k": (1, 2)}) == {"k": [1, 2]}
        assert json_safe({3, 1, 2}) == [1, 2, 3]
        assert json_safe(WithDict()) == {"inner": [1, 2, 3]}
        assert json_safe(object()).startswith("<object object")
