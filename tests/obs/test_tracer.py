"""Tracer JSONL round-trip, schema validation, wall-field stripping."""

import enum
import json

import pytest

from repro.obs import (RUN_END, RUN_START, Tracer, json_safe,
                       strip_wall_fields, validate_trace,
                       validate_trace_lines)


class TestInMemoryTracer:
    def test_header_events_footer_roundtrip(self):
        tracer = Tracer(context={"seed": 7, "experiment": "x"})
        tracer.emit("alpha", t=1.0, value=3)
        tracer.emit("beta", nested={"k": [1, 2]})
        tracer.close()
        events = tracer.events()
        assert [e["kind"] for e in events] == [RUN_START, "alpha", "beta",
                                               RUN_END]
        assert events[0]["context"] == {"seed": 7, "experiment": "x"}
        assert events[1]["t"] == 1.0 and events[1]["value"] == 3
        assert events[2]["nested"] == {"k": [1, 2]}
        assert events[-1]["events"] == 2

    def test_seq_consecutive_and_sorted_keys(self):
        tracer = Tracer()
        tracer.emit("e", zebra=1, apple=2)
        tracer.close()
        lines = tracer.lines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1, 2]
        parsed = json.loads(lines[1])
        assert list(parsed) == sorted(parsed)

    def test_emit_after_close_is_dropped(self):
        tracer = Tracer()
        tracer.emit("e")
        tracer.close()
        tracer.emit("late")
        assert len(tracer.lines()) == 3  # start, e, end — no 'late'

    def test_validates_clean(self):
        tracer = Tracer(context={"seed": 0})
        tracer.emit("e", t=2.5, wall_ms=1.0)
        tracer.close()
        assert validate_trace_lines(tracer.lines()) == []


class TestFileTracer:
    def test_writes_valid_jsonl_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(path, context={"seed": 3}) as tracer:
            tracer.emit("e", t=0.0)
        assert validate_trace(path) == []
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["kind"] == RUN_START

    def test_lines_rejected_on_file_tracers(self, tmp_path):
        tracer = Tracer(str(tmp_path / "t.jsonl"))
        tracer.close()
        with pytest.raises(ValueError):
            tracer.lines()


class TestValidation:
    def test_rejects_bad_json(self):
        assert validate_trace_lines(["not json"])

    def test_rejects_missing_header(self):
        line = json.dumps({"kind": "e", "seq": 0})
        errors = validate_trace_lines([line])
        assert any(RUN_START in error for error in errors)

    def test_rejects_gapped_seq(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": "e", "seq": 5})]
        errors = validate_trace_lines(lines)
        assert any("seq" in error for error in errors)

    def test_rejects_events_after_run_end(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": RUN_END, "seq": 1, "events": 0}),
                 json.dumps({"kind": "late", "seq": 2})]
        errors = validate_trace_lines(lines)
        assert any(RUN_END in error for error in errors)

    def test_rejects_non_numeric_wall_field(self):
        lines = [json.dumps({"kind": RUN_START, "seq": 0, "context": {}}),
                 json.dumps({"kind": "e", "seq": 1, "wall_ms": "slow"})]
        errors = validate_trace_lines(lines)
        assert any("wall_ms" in error for error in errors)

    def test_rejects_empty_trace(self):
        assert validate_trace_lines([]) == ["trace is empty"]


class TestStripWallFields:
    def test_removes_only_wall_prefixed_keys(self):
        line = json.dumps({"kind": "e", "seq": 1, "t": 2.0,
                           "wall_ms": 17.3, "value": 4})
        stripped = json.loads(strip_wall_fields([line])[0])
        assert "wall_ms" not in stripped
        assert stripped["t"] == 2.0 and stripped["value"] == 4


class TestJsonSafe:
    def test_conversions(self):
        class Color(enum.Enum):
            RED = "red"

        class WithDict:
            def to_dict(self):
                return {"inner": {1, 3, 2}}

        assert json_safe(Color.RED) == "red"
        assert json_safe({"k": (1, 2)}) == {"k": [1, 2]}
        assert json_safe({3, 1, 2}) == [1, 2, 3]
        assert json_safe(WithDict()) == {"inner": [1, 2, 3]}
        assert json_safe(object()).startswith("<object object")
