"""Bench harness: schema validity, savings, and the validator itself."""

import copy
import json

import pytest

from repro.perf.bench import (BENCH_SCHEMA, WORKLOADS, run_bench,
                              validate_bench_dict, write_bench)


@pytest.fixture(scope="module")
def quick_doc():
    return run_bench(seed=11, quick=True)


def test_quick_bench_is_schema_valid(quick_doc):
    assert validate_bench_dict(quick_doc) == []
    assert quick_doc["schema"] == BENCH_SCHEMA
    assert list(quick_doc["workloads"]) == [name for name, _ in WORKLOADS]


def test_quick_bench_shows_savings_and_identical_metrics(quick_doc):
    totals = quick_doc["totals"]
    assert totals["identical_metrics"] is True
    assert totals["dijkstra_runs"]["cached"] < \
        totals["dijkstra_runs"]["uncached"]
    for entry in quick_doc["workloads"].values():
        assert entry["identical_metrics"] is True
        assert 0.0 <= entry["path_cache"]["hit_rate"] <= 1.0


def test_write_bench_round_trips(quick_doc, tmp_path):
    path = tmp_path / "bench.json"
    write_bench(quick_doc, str(path))
    loaded = json.loads(path.read_text())
    assert validate_bench_dict(loaded) == []
    assert loaded["totals"] == json.loads(
        json.dumps(quick_doc["totals"]))


def test_validator_rejects_malformed_documents(quick_doc):
    assert validate_bench_dict(None)
    assert validate_bench_dict({}) != []

    wrong_schema = copy.deepcopy(quick_doc)
    wrong_schema["schema"] = "repro.bench/v0"
    assert any("schema" in e for e in validate_bench_dict(wrong_schema))

    missing_totals = copy.deepcopy(quick_doc)
    del missing_totals["totals"]
    assert validate_bench_dict(missing_totals) != []

    bad_counter = copy.deepcopy(quick_doc)
    bad_counter["workloads"]["converge"]["dijkstra_runs"]["cached"] = "many"
    assert validate_bench_dict(bad_counter) != []
