"""Bench harness: schema validity, savings, and the validator itself."""

import copy
import json

import pytest

from repro.perf.bench import (BENCH_SCHEMA, BENCH_SCHEMA_V1, WORKLOAD_SIZES,
                              WORKLOADS, run_bench, validate_bench_dict,
                              workload_params, write_bench)


@pytest.fixture(scope="module")
def quick_doc():
    return run_bench(seed=11, quick=True)


def test_quick_bench_is_schema_valid(quick_doc):
    assert validate_bench_dict(quick_doc) == []
    assert quick_doc["schema"] == BENCH_SCHEMA
    assert quick_doc["mode"] == "matrix"
    assert list(quick_doc["workloads"]) == [name for name, _ in WORKLOADS]


def test_entries_stamp_their_resolved_params(quick_doc):
    """PR6 regression: a --quick artifact must say what sizes actually
    ran, not just share workload names with the full run."""
    for name, entry in quick_doc["workloads"].items():
        assert entry["params"] == workload_params(name, 11, True)
        # Topology dims are stamped everywhere; quick is the small spec.
        assert entry["params"]["n_stub"] == 5
    sweep = quick_doc["workloads"]["reachability_sweep"]["params"]
    assert sweep["sample"] == WORKLOAD_SIZES["reachability_sweep"]["quick"]["sample"]
    # Quick and full sizing must genuinely differ for sized workloads.
    for name in ("reachability_sweep", "fault_epoch", "multicast_fanout"):
        assert workload_params(name, 11, True) != workload_params(name, 11, False)


def test_missing_params_fails_v2_but_passes_v1(quick_doc):
    stripped = copy.deepcopy(quick_doc)
    for entry in stripped["workloads"].values():
        del entry["params"]
    assert any("params" in e for e in validate_bench_dict(stripped))
    legacy = copy.deepcopy(stripped)
    legacy["schema"] = BENCH_SCHEMA_V1
    del legacy["mode"]
    assert validate_bench_dict(legacy) == []


def test_quick_bench_shows_savings_and_identical_metrics(quick_doc):
    totals = quick_doc["totals"]
    assert totals["identical_metrics"] is True
    assert totals["dijkstra_runs"]["cached"] < \
        totals["dijkstra_runs"]["uncached"]
    for entry in quick_doc["workloads"].values():
        assert entry["identical_metrics"] is True
        assert 0.0 <= entry["path_cache"]["hit_rate"] <= 1.0


def test_write_bench_round_trips(quick_doc, tmp_path):
    path = tmp_path / "bench.json"
    write_bench(quick_doc, str(path))
    loaded = json.loads(path.read_text())
    assert validate_bench_dict(loaded) == []
    assert loaded["totals"] == json.loads(
        json.dumps(quick_doc["totals"]))


def test_validator_rejects_malformed_documents(quick_doc):
    assert validate_bench_dict(None)
    assert validate_bench_dict({}) != []

    wrong_schema = copy.deepcopy(quick_doc)
    wrong_schema["schema"] = "repro.bench/v0"
    assert any("schema" in e for e in validate_bench_dict(wrong_schema))

    missing_totals = copy.deepcopy(quick_doc)
    del missing_totals["totals"]
    assert validate_bench_dict(missing_totals) != []

    bad_counter = copy.deepcopy(quick_doc)
    bad_counter["workloads"]["converge"]["dijkstra_runs"]["cached"] = "many"
    assert validate_bench_dict(bad_counter) != []
