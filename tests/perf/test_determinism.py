"""Cached == uncached: the perf layer must never change an answer.

Every bench workload is run twice on the same seed — once with every
cache enabled and once with caching globally off — and the canonical
JSON payloads must be bit-identical.  This is the end-to-end
determinism bar for the whole PR: topology-versioned path cache,
LSDB-generation SPF cache and vN-Bone signature cache all sit under
these workloads.
"""

import pytest

from repro.perf.bench import WORKLOADS, run_leg

WORKLOAD_IDS = [name for name, _ in WORKLOADS]


@pytest.mark.parametrize("name,workload", WORKLOADS, ids=WORKLOAD_IDS)
def test_cached_leg_matches_uncached_leg(name, workload):
    cached = run_leg(workload, seed=7, quick=True, cached=True)
    uncached = run_leg(workload, seed=7, quick=True, cached=False)
    assert cached.payload == uncached.payload
    # Caching may only remove Dijkstra work, never add it.
    assert cached.counter("perf.dijkstra_runs") <= \
        uncached.counter("perf.dijkstra_runs")
    # The uncached leg must not touch any cache.
    assert uncached.counter("perf.path_cache.hits") == 0
    assert uncached.counter("igp.ls.spf_cache_hits") == 0


def test_fault_epoch_exercises_cache_invalidation():
    from repro.perf.bench import workload_fault_epoch
    leg = run_leg(workload_fault_epoch, seed=7, quick=True, cached=True)
    # Crash + recovery moved the topology version, so the path cache
    # must have been flushed at least twice while still being used.
    assert leg.counter("perf.path_cache.invalidations") >= 2
    assert leg.counter("perf.path_cache.hits") > 0


def test_same_seed_same_leg_is_reproducible():
    from repro.perf.bench import workload_reachability_sweep
    a = run_leg(workload_reachability_sweep, seed=3, quick=True, cached=True)
    b = run_leg(workload_reachability_sweep, seed=3, quick=True, cached=True)
    assert a.payload == b.payload
    assert a.counter("perf.dijkstra_runs") == b.counter("perf.dijkstra_runs")
