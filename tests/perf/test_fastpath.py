"""Fast path on == fast path off: flow aggregation never changes answers.

Mirrors ``test_determinism`` (cached == uncached): every bench workload
runs twice on the same seed — once with the flow-level forwarding fast
path enabled and once forced onto the per-packet slow path — and the
canonical JSON payloads must be bit-identical.  A traced fault-epoch
run additionally locks the ``repro.report/v1`` critical paths: fault
epochs pause the fast path, so the span trees the analyzer extracts
phase timings from are the same event-for-event.
"""

import pytest

from repro.analyze import build_report
from repro.net.fastpath import flow_fastpath
from repro.obs import Observability, Tracer, observing
from repro.perf.bench import WORKLOADS, run_leg, workload_fault_epoch
from repro.perf.cache import caching

WORKLOAD_IDS = [name for name, _ in WORKLOADS]


@pytest.mark.parametrize("name,workload", WORKLOADS, ids=WORKLOAD_IDS)
def test_fastpath_leg_matches_slowpath_leg(name, workload):
    with flow_fastpath(True):
        on = run_leg(workload, seed=7, quick=True, cached=True)
    with flow_fastpath(False):
        off = run_leg(workload, seed=7, quick=True, cached=False)
    assert on.payload == off.payload
    # The disabled leg must never consult the flow cache.
    assert off.counter("perf.fastpath.hits") == 0
    assert off.counter("perf.fastpath.misses") == 0


def test_repeated_sweep_aggregates_flows():
    """Re-probing the same host pairs within a quiescent topology is
    served from the flow cache — the scale sweep's hot path."""
    from repro.perf.bench import _deployed_internet

    obs = Observability()
    with flow_fastpath(True), caching(True), observing(obs):
        internet, _deployment = _deployed_internet(seed=7, quick=True)
        first = internet.ipv4_reachability(sample=30, seed=7).to_dict()
        second = internet.ipv4_reachability(sample=30, seed=7).to_dict()
        fastpath = internet.orchestrator.engine.fastpath
    assert first == second
    # Every probe of the second sweep replayed a cached flow.
    assert fastpath.hits >= 30
    assert fastpath.stats()["packets_aggregated"] >= 60


def test_fault_epochs_always_take_the_slow_path():
    with flow_fastpath(True):
        leg = run_leg(workload_fault_epoch, seed=7, quick=True, cached=True)
    # play() pauses the fast path for the whole plan, so transient and
    # recovered measurements never replay a cached walk.
    assert leg.counter("perf.fastpath.hits") == 0


def _traced_fault_report(fastpath_on):
    obs = Observability(tracer=Tracer(context={"seed": 7,
                                               "fastpath": fastpath_on}))
    with flow_fastpath(fastpath_on), caching(True), observing(obs):
        workload_fault_epoch(7, True)
    obs.close()
    return build_report(obs.tracer.events())


@pytest.mark.slow
def test_report_critical_paths_identical_fastpath_on_vs_off():
    on = _traced_fault_report(True)
    off = _traced_fault_report(False)
    assert len(on["epochs"]) == len(off["epochs"]) == 2
    for epoch_on, epoch_off in zip(on["epochs"], off["epochs"]):
        assert epoch_on["critical_path"] == epoch_off["critical_path"]
        assert epoch_on["transient"] == epoch_off["transient"]
        assert epoch_on["recovered"] == epoch_off["recovered"]
    # Forwarding distributions come from per-packet spans; the fault
    # workload's probes all run under paused epochs, so even these
    # match span-for-span.
    assert on["forwarding"] == off["forwarding"]
