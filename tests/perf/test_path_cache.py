"""PathCache behaviour: hits, misses, invalidation, and equivalence.

The cache must be invisible except for speed: every answer it gives has
to be bit-identical to the raw early-exit Dijkstra, and every topology
mutation — link flips (the fault injector calls ``link.fail()``
directly), node crashes, host moves — must invalidate it.
"""

import pytest

from repro.perf import PathCache, caching

from tests.conftest import build_two_domain_network


def all_node_ids(net):
    return sorted(net.nodes)


def test_cached_paths_match_raw_dijkstra():
    net = build_two_domain_network()
    ids = all_node_ids(net)
    for src in ids:
        for dst in ids:
            if src == dst:
                continue
            assert net.shortest_path(src, dst) == \
                net._compute_shortest_path(src, dst)
            assert net.shortest_path(src, dst, intra_domain_only=True) == \
                net._compute_shortest_path(src, dst, intra_domain_only=True)


def test_hit_miss_accounting():
    net = build_two_domain_network()
    stats0 = net.path_cache.stats()
    assert stats0 == {"hits": 0, "misses": 0, "invalidations": 0,
                      "entries": 0}
    net.shortest_path("h1", "h2")
    net.shortest_path("h1", "r2a")  # same source tree
    net.shortest_path("h1", "h2")
    stats = net.path_cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 2
    assert stats["entries"] == 1


def test_link_fail_invalidates_and_restore_recovers():
    net = build_two_domain_network()
    cost, path = net.shortest_path("h1", "h2")
    assert path[0] == "h1" and path[-1] == "h2"
    link = net.link_between("r1a", "r1b")

    link.fail()  # exactly what the fault injector does
    assert net.shortest_path("h1", "h2") is None
    stats = net.path_cache.stats()
    assert stats["invalidations"] == 1

    link.restore()
    assert net.shortest_path("h1", "h2") == (cost, path)
    assert net.path_cache.stats()["invalidations"] == 2


def test_crash_node_invalidates():
    net = build_two_domain_network()
    assert net.shortest_path("h1", "h2") is not None
    net.crash_node("r1b")
    assert net.shortest_path("h1", "h2") is None
    assert net.path_cache.stats()["invalidations"] >= 1


def test_move_host_invalidates():
    net = build_two_domain_network()
    cost_before, _ = net.shortest_path("h1", "h2")
    net.move_host("h1", 2, "r2a")
    cost_after, path_after = net.shortest_path("h1", "h2")
    assert path_after == ["h1", "r2a", "h2"]
    assert cost_after < cost_before
    assert net.path_cache.stats()["invalidations"] >= 1


def test_domain_filtered_tree_stays_inside_domain():
    net = build_two_domain_network()
    tree = net.shortest_path_tree("r1a", domain=1)
    dom = net.domains[1]
    allowed = dom.routers | dom.hosts
    assert set(tree) <= allowed
    assert {"r1a", "r1b", "h1"} <= set(tree)


def test_caching_context_disables_cache():
    with caching(False):
        net = build_two_domain_network()
    assert not net.path_cache.enabled
    assert net.shortest_path("h1", "h2") is not None
    assert net.path_cache.stats() == {"hits": 0, "misses": 0,
                                      "invalidations": 0, "entries": 0}


def test_unreachable_destination_returns_none():
    net = build_two_domain_network()
    cache = PathCache(net, enabled=True)
    net.add_router("lonely", 1)
    assert cache.shortest_path("h1", "lonely") is None


def test_stale_version_detected_even_without_query_between_mutations():
    net = build_two_domain_network()
    net.shortest_path("h1", "h2")
    link = net.link_between("r1a", "r1b")
    link.fail()
    link.restore()  # version moved twice; cache saw neither
    cost, path = net.shortest_path("h1", "h2")
    assert cost == pytest.approx(
        net._compute_shortest_path("h1", "h2")[0])
    assert path == net._compute_shortest_path("h1", "h2")[1]
    assert net.path_cache.stats()["invalidations"] == 1
