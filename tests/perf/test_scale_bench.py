"""Scale sweep: schema validity, leg determinism, and sweep validation.

Timing fields (``wall_*``, ``speedup``) are recorded but never
asserted on — the bar here is that both legs of every cell walk the
same flows to the same outcomes, and that the emitted document is a
valid ``repro.bench/v2`` ``scale_sweep``.
"""

import copy

import pytest

from repro.perf.bench import BENCH_SCHEMA, validate_bench_dict
from repro.perf.scale_bench import run_cell_leg, run_control_leg, run_sweep


@pytest.fixture(scope="module")
def sweep_doc():
    # One small cell keeps the suite fast; the CLI covers the full axis.
    return run_sweep(seed=5, quick=True, sizes=(300,))


def test_sweep_is_schema_valid(sweep_doc):
    assert validate_bench_dict(sweep_doc) == []
    assert sweep_doc["schema"] == BENCH_SCHEMA
    assert sweep_doc["mode"] == "scale_sweep"
    assert len(sweep_doc["cells"]) == 1


def test_cell_legs_deliver_identically(sweep_doc):
    cell = sweep_doc["cells"][0]
    assert cell["identical_metrics"] is True
    assert sweep_doc["totals"]["identical_metrics"] is True
    delivery = cell["delivery"]
    flows = cell["params"]["flows"]
    repeats = cell["params"]["repeats"]
    assert delivery["attempted"] == flows * repeats
    assert 0 < delivery["delivered"] <= delivery["attempted"]


def test_fastpath_leg_aggregates_repeat_sends(sweep_doc):
    cell = sweep_doc["cells"][0]
    stats = cell["fastpath"]
    # Every send is pure IPv4, so each one is a hit or a miss.
    assert stats["hits"] + stats["misses"] == cell["delivery"]["attempted"]
    assert stats["hits"] > 0
    assert stats["packets_aggregated"] >= stats["hits"]
    assert stats["flows"] <= cell["params"]["flows"]


def test_cell_leg_is_deterministic_across_fastpath_setting():
    fast = run_cell_leg(300, seed=9, n_flows=40, repeats=3, fastpath_on=True)
    slow = run_cell_leg(300, seed=9, n_flows=40, repeats=3, fastpath_on=False)
    assert fast.delivery == slow.delivery
    assert fast.routers_built == slow.routers_built
    assert fast.ases == slow.ases
    # The disabled leg never touched the flow cache.
    assert slow.fastpath_stats["hits"] == 0
    assert slow.fastpath_stats["misses"] == 0


def test_control_plane_leg_proves_install_equivalence(sweep_doc):
    control = sweep_doc["cells"][0]["control_plane"]
    assert control["identical_fibs"] is True
    assert sweep_doc["totals"]["identical_fibs"] is True
    lookups = control["install_fib_lookups"]
    # Grouping must shave install-path FIB lookups, never add them.
    assert 0 < lookups["grouped"] < lookups["seed"]
    assert control["lookup_reduction"] == pytest.approx(
        lookups["seed"] / lookups["grouped"])
    events = control["convergence_events"]
    assert 0 < events["grouped"] <= events["seed"]


def test_control_leg_digest_matches_across_modes():
    grouped = run_control_leg(300, seed=9, grouped=True)
    seed = run_control_leg(300, seed=9, grouped=False)
    assert grouped.fib_digest == seed.fib_digest
    assert 0 < grouped.install_fib_lookups < seed.install_fib_lookups


def test_validator_rejects_malformed_control_plane(sweep_doc):
    bad_bit = copy.deepcopy(sweep_doc)
    bad_bit["cells"][0]["control_plane"]["identical_fibs"] = "yes"
    assert any("identical_fibs" in e for e in validate_bench_dict(bad_bit))

    bad_lookups = copy.deepcopy(sweep_doc)
    bad_lookups["cells"][0]["control_plane"]["install_fib_lookups"] = {
        "grouped": "lots", "seed": 10}
    assert any("install_fib_lookups" in e
               for e in validate_bench_dict(bad_lookups))

    bad_reduction = copy.deepcopy(sweep_doc)
    bad_reduction["cells"][0]["control_plane"]["lookup_reduction"] = -2.0
    assert any("lookup_reduction" in e
               for e in validate_bench_dict(bad_reduction))


def test_pre_control_plane_artifacts_stay_valid(sweep_doc):
    # The control_plane block is a PR-9 addition; sweeps emitted before
    # it (the committed BENCH_SCALE_PR6.json) must still validate.
    legacy = copy.deepcopy(sweep_doc)
    del legacy["cells"][0]["control_plane"]
    del legacy["totals"]["identical_fibs"]
    assert validate_bench_dict(legacy) == []


def test_validator_rejects_malformed_sweeps(sweep_doc):
    bad_mode = copy.deepcopy(sweep_doc)
    bad_mode["mode"] = "sideways"
    assert any("mode" in e for e in validate_bench_dict(bad_mode))

    no_cells = copy.deepcopy(sweep_doc)
    no_cells["cells"] = []
    assert any("cells" in e for e in validate_bench_dict(no_cells))

    bad_cell = copy.deepcopy(sweep_doc)
    bad_cell["cells"][0]["fastpath"]["hits"] = "lots"
    assert any("hits" in e for e in validate_bench_dict(bad_cell))

    bad_speedup = copy.deepcopy(sweep_doc)
    bad_speedup["cells"][0]["speedup"] = -1.0
    assert any("speedup" in e for e in validate_bench_dict(bad_speedup))
