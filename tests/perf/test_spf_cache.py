"""LSDB-generation SPF cache: reuse across queries, precise invalidation.

``LinkStateRouting`` memoises each router's SPF result against its LSDB
generation counter.  A converged domain must answer ``igp_distance``
queries without re-running Dijkstra, and an event inside one domain
must not disturb the cached state of another ("exactly the affected
entries").
"""

from repro.core.orchestrator import Orchestrator
from repro.obs import Observability, observing

from tests.conftest import build_two_domain_network


def converged(seed=1):
    obs = Observability()
    with observing(obs):
        net = build_two_domain_network()
        orch = Orchestrator(net, seed=seed)
        orch.converge()
    return net, orch, obs


def counters(obs):
    return dict(obs.metrics_summary()["counters"])


def test_repeated_queries_hit_the_spf_cache():
    net, orch, obs = converged()
    igp1 = orch.igp(1)
    before = counters(obs)
    d1 = igp1.igp_distance("r1a", "r1b")
    d2 = igp1.igp_distance("r1a", "r1b")
    after = counters(obs)
    assert d1 == d2 == 1.0
    # install_routes already ran SPF for every router; queries reuse it.
    assert after["igp.ls.spf_runs"] == before["igp.ls.spf_runs"]
    assert after.get("igp.ls.spf_cache_hits", 0) >= \
        before.get("igp.ls.spf_cache_hits", 0) + 2


def test_link_event_invalidates_only_the_affected_domain():
    net, orch, obs = converged()
    igp1, igp2 = orch.igp(1), orch.igp(2)
    gens1_before = dict(igp1._lsdb_gen)
    gens2_before = dict(igp2._lsdb_gen)

    link = net.link_between("r1a", "r1b")
    link.fail()
    orch.notify_link_change(link)
    orch.reconverge()

    # The event re-originated LSAs inside AS1 ...
    assert igp1._lsdb_gen != gens1_before
    # ... but AS2's LSDBs — and therefore its SPF cache keys — did not move.
    assert igp2._lsdb_gen == gens2_before

    before = counters(obs)
    assert igp2.igp_distance("r2a", "r2b") == 1.0
    after = counters(obs)
    assert after["igp.ls.spf_runs"] == before["igp.ls.spf_runs"]
    assert after.get("igp.ls.spf_cache_hits", 0) > \
        before.get("igp.ls.spf_cache_hits", 0)


def test_recomputed_distances_reflect_the_new_topology():
    net, orch, obs = converged()
    igp1 = orch.igp(1)
    assert igp1.igp_distance("r1a", "r1b") == 1.0
    link = net.link_between("r1a", "r1b")
    link.fail()
    orch.notify_link_change(link)
    orch.reconverge()
    # r1a and r1b are now partitioned inside AS1.
    assert igp1.igp_distance("r1a", "r1b") is None
    link.restore()
    orch.notify_link_change(link)
    orch.reconverge()
    assert igp1.igp_distance("r1a", "r1b") == 1.0
