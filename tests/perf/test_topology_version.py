"""Topology-version counter: every topology mutation must bump it.

The version is the single invalidation signal for every path cache, so
these tests pin down exactly which operations move it — and, just as
importantly, that no-op transitions (failing an already-down link) do
not churn it.
"""

from tests.conftest import build_two_domain_network


def test_add_link_bumps_version():
    net = build_two_domain_network()
    before = net.topology_version
    net.add_router("r1c", 1)
    assert net.topology_version == before  # a linkless node changes no path
    net.add_link("r1b", "r1c")
    assert net.topology_version == before + 1


def test_link_fail_and_restore_bump_version():
    net = build_two_domain_network()
    link = net.link_between("r1a", "r1b")
    before = net.topology_version
    link.fail()
    assert net.topology_version == before + 1
    link.restore()
    assert net.topology_version == before + 2


def test_noop_link_transitions_do_not_bump():
    net = build_two_domain_network()
    link = net.link_between("r1a", "r1b")
    link.fail()
    before = net.topology_version
    link.fail()  # already down
    assert net.topology_version == before
    link.restore()
    after_restore = net.topology_version
    assert after_restore == before + 1
    link.restore()  # already up
    assert net.topology_version == after_restore


def test_crash_and_recover_bump_version():
    net = build_two_domain_network()
    before = net.topology_version
    net.crash_node("r1a")
    mid = net.topology_version
    assert mid > before
    net.recover_node("r1a")
    assert net.topology_version > mid


def test_fail_router_bumps_version():
    net = build_two_domain_network()
    before = net.topology_version
    failed = net.fail_router("r1b")
    assert failed  # the border router had live links
    assert net.topology_version > before


def test_move_host_bumps_version():
    net = build_two_domain_network()
    before = net.topology_version
    net.move_host("h1", 2, "r2a")
    assert net.topology_version > before
