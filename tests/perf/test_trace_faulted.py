"""ForwardingTrace.faulted is a sticky flag set at record() time."""

from repro.net import Outcome
from repro.net.forwarding import ForwardingTrace

from tests.conftest import build_two_domain_network


def test_faulted_set_by_record_and_sticky():
    net = build_two_domain_network()
    trace = ForwardingTrace()
    trace.record(net.node("h1"), "send")
    assert not trace.faulted
    trace.record(net.node("r1a"), "forward", faulted=True)
    assert trace.faulted
    trace.record(net.node("r1b"), "forward")  # later clean hop: still faulted
    assert trace.faulted


def test_fault_dropped_outcome_implies_faulted():
    trace = ForwardingTrace()
    trace.outcome = Outcome.FAULT_DROPPED
    assert trace.faulted


def test_clean_trace_is_not_faulted():
    net = build_two_domain_network()
    trace = ForwardingTrace()
    trace.record(net.node("h1"), "send")
    trace.record(net.node("r1a"), "forward")
    assert not trace.faulted
