"""Tests for the application-level redirection baselines (Section 2.2)."""

import pytest

from repro.net import Outcome
from repro.net.errors import RedirectionError
from repro.anycast import DefaultRootedAnycast
from repro.redirection import (BrokerLookupService, IspLookupService,
                               app_level_send, compare_redirection)
from repro.vnbone import VnDeployment


@pytest.fixture
def deployment(converged_hub):
    scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
    dep = VnDeployment(converged_hub, scheme, version=8)
    dep.deploy(2)
    dep.rebuild()
    return dep


class TestIspLookup:
    def test_serves_customers_of_participants(self, deployment):
        service = IspLookupService(deployment)
        service.sync()
        answer = service.query("hx")  # hx is in adopting AS2
        assert answer is not None
        assert answer.router_id in deployment.members()

    def test_refuses_clients_of_non_participants(self, deployment):
        """The universal-access failure: hz's ISP (AS4) does not
        participate, so hz has no lookup service at all."""
        service = IspLookupService(deployment)
        service.sync()
        assert service.query("hz") is None
        assert service.failures == 1

    def test_explicit_participant_set(self, deployment):
        service = IspLookupService(deployment, participants={2, 4})
        service.sync()
        assert service.query("hz") is not None

    def test_does_not_violate_market_structure(self, deployment):
        assert not IspLookupService(deployment).violates_market_structure


class TestBrokerLookup:
    def test_serves_everyone(self, deployment):
        broker = BrokerLookupService(deployment)
        broker.sync()
        assert broker.query("hz") is not None
        assert broker.query("hx") is not None

    def test_violates_market_structure(self, deployment):
        assert BrokerLookupService(deployment).violates_market_structure

    def test_partial_visibility(self, converged_hub, deployment):
        deployment.deploy(4)  # members now in AS2 and AS4
        deployment.rebuild()
        broker = BrokerLookupService(deployment, reporting_asns={2})
        broker.sync()
        answer = broker.query("hz")
        # hz's nearest member is in its own AS4, but the broker cannot
        # see it: it refers to the reported (farther) AS2 member.
        assert answer is not None
        assert deployment.network.node(answer.router_id).domain_id == 2

    def test_staleness_after_churn(self, deployment):
        broker = BrokerLookupService(deployment)
        broker.sync()
        deployment.undeploy(2)
        deployment.deploy(3)
        deployment.rebuild()
        answer = broker.query("hz")  # answered from the stale snapshot
        assert answer is not None
        assert not answer.believed_member
        assert broker.stale_answers == 1

    def test_sync_clears_staleness(self, deployment):
        broker = BrokerLookupService(deployment)
        broker.sync()
        deployment.undeploy(2)
        deployment.deploy(3)
        deployment.rebuild()
        broker.sync()
        answer = broker.query("hz")
        assert answer is not None and answer.believed_member


class TestAppLevelSend:
    def test_delivery_with_fresh_service(self, deployment):
        broker = BrokerLookupService(deployment)
        broker.sync()
        trace = app_level_send(deployment, broker, "hz", "hx")
        assert trace.outcome is Outcome.DELIVERED

    def test_refusal_raises(self, deployment):
        service = IspLookupService(deployment)
        service.sync()
        with pytest.raises(RedirectionError):
            app_level_send(deployment, service, "hz", "hx")

    def test_stale_referral_blackholes(self, deployment):
        broker = BrokerLookupService(deployment)
        broker.sync()
        deployment.undeploy(2)
        deployment.deploy(3)
        deployment.rebuild()
        trace = app_level_send(deployment, broker, "hz", "hx")
        assert trace.outcome is not Outcome.DELIVERED


class TestComparison:
    def test_scorecard(self, deployment):
        broker = BrokerLookupService(deployment)
        broker.sync()
        isp = IspLookupService(deployment)
        isp.sync()
        clients = ["hx", "hz"]
        broker_row = compare_redirection(deployment, broker, clients, "hx",
                                         "broker")
        isp_row = compare_redirection(deployment, isp, clients, "hx", "isp")
        assert broker_row.requires_new_contracts
        assert broker_row.served == 1 and broker_row.delivered == 1
        assert isp_row.refused == 1  # hz has no service
        assert isp_row.access_ratio == 0.0
