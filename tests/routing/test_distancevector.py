"""Unit tests for the distance-vector IGP and its anycast extension."""

import pytest

from repro.net import Domain, EventScheduler, Network, Prefix, ipv4, ipv4_packet
from repro.net.errors import RoutingError
from repro.net.forwarding import ForwardingEngine, Outcome
from repro.routing.distancevector import INFINITY, DistanceVectorRouting


def line_domain(n=4):
    net = Network()
    net.add_domain(Domain(asn=1, name="one", prefix=Prefix.parse("10.1.0.0/16")))
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i in range(n - 1):
        net.add_link(f"r{i}", f"r{i+1}", cost=1)
    return net


def converge(net):
    sched = EventScheduler()
    igp = DistanceVectorRouting(net, net.domains[1], sched)
    igp.converge()
    return igp, sched


class TestUnicast:
    def test_all_pairs_reachable(self):
        net = line_domain()
        converge(net)
        engine = ForwardingEngine(net)
        for i in range(4):
            for j in range(4):
                if i == j:
                    continue
                trace = engine.forward(ipv4_packet(net.node(f"r{i}").ipv4,
                                                   net.node(f"r{j}").ipv4), f"r{i}")
                assert trace.outcome is Outcome.DELIVERED

    def test_metrics_accumulate_hop_costs(self):
        net = line_domain()
        igp, _ = converge(net)
        route = igp.table("r0")[Prefix.host(net.node("r3").ipv4)]
        assert route == (3.0, "r1")

    def test_link_failure_reroutes_via_ring(self):
        net = line_domain(4)
        net.add_link("r3", "r0", cost=1)  # close the ring
        igp, sched = converge(net)
        entry = net.node("r0").fib4.lookup(net.node("r1").ipv4)
        assert entry is not None and entry.next_hop == "r1"
        net.link_between("r0", "r1").fail()
        igp.refresh()
        sched.run_until_idle()
        igp.install_routes()
        entry = net.node("r0").fib4.lookup(net.node("r1").ipv4)
        assert entry is not None and entry.next_hop == "r3"
        assert entry.metric == 3.0

    def test_host_routes_propagate(self):
        net = line_domain()
        net.add_host("h", 1, "r3")
        converge(net)
        engine = ForwardingEngine(net)
        trace = engine.forward(ipv4_packet(net.node("r0").ipv4,
                                           net.node("h").ipv4), "r0")
        assert trace.delivered_to == "h"


class TestAnycastExtension:
    def test_zero_distance_advertisement(self):
        """The paper: an IPvN router advertises distance 0 to its
        anycast address; DV then finds everyone's closest member."""
        net = line_domain(5)
        sched = EventScheduler()
        igp = DistanceVectorRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        for member in ("r0", "r4"):
            net.node(member).add_local_ipv4(anycast)
            igp.advertise_anycast(member, anycast)
        igp.converge()
        engine = ForwardingEngine(net)
        assert engine.forward(ipv4_packet(net.node("r1").ipv4, anycast),
                              "r1").delivered_to == "r0"
        assert engine.forward(ipv4_packet(net.node("r3").ipv4, anycast),
                              "r3").delivered_to == "r4"

    def test_member_metric_is_distance_to_member(self):
        net = line_domain(5)
        sched = EventScheduler()
        igp = DistanceVectorRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        igp.advertise_anycast("r4", anycast)
        igp.converge()
        assert igp.route_to("r0", anycast) == (4.0, "r1")
        assert igp.route_to("r4", anycast) == (0.0, None)

    def test_withdrawal_poisons_route(self):
        net = line_domain(3)
        sched = EventScheduler()
        igp = DistanceVectorRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        igp.advertise_anycast("r2", anycast)
        igp.converge()
        assert igp.route_to("r0", anycast) is not None
        igp.withdraw_anycast("r2", anycast)
        sched.run_until_idle()
        igp.install_routes()
        assert igp.route_to("r0", anycast) is None
        assert net.node("r0").fib4.lookup(anycast) is None

    def test_no_member_discovery(self):
        net = line_domain(3)
        sched = EventScheduler()
        igp = DistanceVectorRouting(net, net.domains[1], sched)
        igp.converge()
        assert DistanceVectorRouting.supports_member_discovery is False
        with pytest.raises(RoutingError):
            igp.member_directory(ipv4("240.0.0.1"))


class TestProtocolMechanics:
    def test_poison_reverse_in_vectors(self):
        """A router never offers a route back to its own next hop."""
        net = line_domain(3)
        igp, sched = converge(net)
        # r1's route to r0's loopback has next hop r0; the vector r1
        # sends to r0 must poison it (advertise INFINITY).
        table = igp.table("r1")
        r0_prefix = Prefix.host(net.node("r0").ipv4)
        assert table[r0_prefix][1] == "r0"
        vector = {}
        for pfx, route in igp._tables["r1"].items():
            vector[pfx] = INFINITY if route.next_hop == "r0" else route.metric
        assert vector[r0_prefix] == INFINITY

    def test_update_coalescing(self):
        net = line_domain(3)
        sched = EventScheduler()
        igp = DistanceVectorRouting(net, net.domains[1], sched)
        igp._schedule_update("r0")
        igp._schedule_update("r0")
        assert len(sched) == 1

    def test_counting_converges_with_budget(self):
        net = line_domain(6)
        igp, _ = converge(net)
        assert igp.stats.sent > 0

    def test_messages_ignored_after_link_failure(self):
        net = line_domain(3)
        sched = EventScheduler()
        igp = DistanceVectorRouting(net, net.domains[1], sched)
        igp.start()
        # Fail the link while updates are in flight: deliveries over the
        # dead link are discarded, and convergence still completes.
        net.link_between("r1", "r2").fail()
        igp.converge()
        assert igp.route_to("r0", net.node("r2").ipv4) is None
