"""Property-based cross-check: both IGPs compute true shortest paths.

On random connected intra-domain graphs, link-state and distance-vector
must install routes whose metrics equal the Dijkstra ground truth, and
the anycast extension must pick the truly closest member under both.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Domain, EventScheduler, Network, Prefix, ipv4, ipv4_packet
from repro.net.forwarding import ForwardingEngine
from repro.routing.distancevector import DistanceVectorRouting
from repro.routing.linkstate import LinkStateRouting


def random_connected_domain(n_routers: int, extra_edges: int, seed: int) -> Network:
    rng = random.Random(seed)
    net = Network()
    net.add_domain(Domain(asn=1, name="one", prefix=Prefix.parse("10.1.0.0/16")))
    ids = [f"r{i}" for i in range(n_routers)]
    for rid in ids:
        net.add_router(rid, 1)
    for i in range(1, n_routers):
        anchor = ids[rng.randrange(i)]
        net.add_link(ids[i], anchor, cost=rng.randint(1, 5))
    for _ in range(extra_edges):
        a, b = rng.sample(ids, 2)
        if net.link_between(a, b) is None:
            net.add_link(a, b, cost=rng.randint(1, 5))
    return net


@pytest.mark.parametrize("igp_cls", [LinkStateRouting, DistanceVectorRouting])
@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=8),
       extra=st.integers(min_value=0, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
def test_igp_metrics_match_dijkstra(igp_cls, n, extra, seed):
    net = random_connected_domain(n, extra, seed)
    sched = EventScheduler()
    igp = igp_cls(net, net.domains[1], sched)
    igp.converge()
    for src in net.domains[1].routers:
        for dst in net.domains[1].routers:
            if src == dst:
                continue
            truth = net.shortest_path(src, dst, intra_domain_only=True)
            assert truth is not None
            entry = net.node(src).fib4.lookup(net.node(dst).ipv4)
            assert entry is not None, (src, dst)
            assert entry.metric == pytest.approx(truth[0])


@pytest.mark.parametrize("igp_cls", [LinkStateRouting, DistanceVectorRouting])
@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=3, max_value=8),
       extra=st.integers(min_value=0, max_value=5),
       seed=st.integers(min_value=0, max_value=10_000),
       data=st.data())
def test_anycast_reaches_closest_member(igp_cls, n, extra, seed, data):
    net = random_connected_domain(n, extra, seed)
    routers = sorted(net.domains[1].routers)
    members = data.draw(st.sets(st.sampled_from(routers), min_size=1, max_size=3))
    sched = EventScheduler()
    igp = igp_cls(net, net.domains[1], sched)
    anycast = ipv4("240.0.0.1")
    for member in sorted(members):
        net.node(member).add_local_ipv4(anycast)
        igp.advertise_anycast(member, anycast)
    igp.converge()
    engine = ForwardingEngine(net)
    for src in routers:
        trace = engine.forward(ipv4_packet(net.node(src).ipv4, anycast), src)
        assert trace.delivered, (src, trace)
        optimal = min(net.shortest_path(src, m, intra_domain_only=True)[0]
                      for m in members)
        actual = net.shortest_path(src, trace.delivered_to,
                                   intra_domain_only=True)[0]
        # The delivered member must be a truly closest one.
        assert actual == pytest.approx(optimal), (src, trace.delivered_to)
