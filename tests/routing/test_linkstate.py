"""Unit tests for the link-state IGP and its anycast extension."""

import pytest

from repro.net import Domain, EventScheduler, Network, Prefix, ipv4, ipv4_packet
from repro.net.forwarding import ForwardingEngine, Outcome
from repro.routing.igp import ANYCAST_STUB_COST
from repro.routing.linkstate import LinkStateRouting
from repro.net.errors import RoutingError


def square_domain():
    """a - b
       |   |
       d - c   with a-b cheap ring; plus a host on d."""
    net = Network()
    net.add_domain(Domain(asn=1, name="one", prefix=Prefix.parse("10.1.0.0/16")))
    for name in "abcd":
        net.add_router(name, 1)
    net.add_link("a", "b", cost=1)
    net.add_link("b", "c", cost=1)
    net.add_link("c", "d", cost=1)
    net.add_link("d", "a", cost=1)
    net.add_host("h", 1, "d")
    return net


def converge(net):
    sched = EventScheduler()
    igp = LinkStateRouting(net, net.domains[1], sched)
    igp.converge()
    return igp, sched


class TestUnicastRoutes:
    def test_all_pairs_reachable(self):
        net = square_domain()
        converge(net)
        engine = ForwardingEngine(net)
        for src in "abcd":
            for dst in "abcd":
                if src == dst:
                    continue
                trace = engine.forward(
                    ipv4_packet(net.node(src).ipv4, net.node(dst).ipv4), src)
                assert trace.outcome is Outcome.DELIVERED, (src, dst, trace)

    def test_host_prefix_distributed(self):
        net = square_domain()
        converge(net)
        engine = ForwardingEngine(net)
        trace = engine.forward(
            ipv4_packet(net.node("b").ipv4, net.node("h").ipv4), "b")
        assert trace.delivered_to == "h"

    def test_shortest_path_chosen(self):
        net = square_domain()
        converge(net)
        entry = net.node("a").fib4.lookup(net.node("b").ipv4)
        assert entry is not None and entry.next_hop == "b"
        assert entry.metric == 1.0

    def test_routes_follow_link_failure_after_refresh(self):
        net = square_domain()
        igp, sched = converge(net)
        net.link_between("a", "b").fail()
        igp.refresh()
        sched.run_until_idle()
        igp.install_routes()
        entry = net.node("a").fib4.lookup(net.node("b").ipv4)
        assert entry is not None and entry.next_hop == "d"
        assert entry.metric == 3.0

    def test_partition_leaves_no_route(self):
        net = square_domain()
        igp, sched = converge(net)
        net.link_between("a", "b").fail()
        net.link_between("d", "a").fail()
        igp.refresh()
        sched.run_until_idle()
        igp.install_routes()
        assert net.node("a").fib4.lookup(net.node("c").ipv4) is None


class TestAnycastExtension:
    def test_closest_member_wins(self):
        net = square_domain()
        sched = EventScheduler()
        igp = LinkStateRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        for member in ("b", "d"):
            net.node(member).add_local_ipv4(anycast)
            igp.advertise_anycast(member, anycast)
        igp.converge()
        engine = ForwardingEngine(net)
        trace = engine.forward(ipv4_packet(net.node("a").ipv4, anycast), "a")
        # a is equidistant from b and d; deterministic tie-break picks one.
        assert trace.delivered_to in ("b", "d")
        trace_c = engine.forward(ipv4_packet(net.node("c").ipv4, anycast), "c")
        assert trace_c.delivered_to in ("b", "d")
        assert trace_c.physical_hops == 1

    def test_uniform_stub_cost_does_not_change_selection(self):
        net = square_domain()
        sched = EventScheduler()
        igp = LinkStateRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        net.node("b").add_local_ipv4(anycast)
        igp.advertise_anycast("b", anycast, cost=ANYCAST_STUB_COST)
        igp.converge()
        entry = net.node("a").fib4.lookup(anycast)
        assert entry is not None and entry.next_hop == "b"
        assert entry.metric == 1.0 + ANYCAST_STUB_COST

    def test_member_directory_from_lsdb(self):
        net = square_domain()
        sched = EventScheduler()
        igp = LinkStateRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        igp.advertise_anycast("b", anycast)
        igp.advertise_anycast("c", anycast)
        igp.converge()
        assert igp.member_directory(anycast) == {"b", "c"}
        assert igp.member_directory(anycast, viewpoint="d") == {"b", "c"}

    def test_member_directory_rejects_foreign_viewpoint(self):
        net = square_domain()
        igp, _ = converge(net)
        with pytest.raises(RoutingError):
            igp.member_directory(ipv4("240.0.0.1"), viewpoint="ghost")

    def test_withdraw_anycast_reroutes(self):
        net = square_domain()
        sched = EventScheduler()
        igp = LinkStateRouting(net, net.domains[1], sched)
        anycast = ipv4("240.0.0.1")
        for member in ("b", "d"):
            net.node(member).add_local_ipv4(anycast)
            igp.advertise_anycast(member, anycast)
        igp.converge()
        net.node("b").remove_local_ipv4(anycast)
        igp.withdraw_anycast("b", anycast)
        sched.run_until_idle()
        igp.install_routes()
        engine = ForwardingEngine(net)
        trace = engine.forward(ipv4_packet(net.node("c").ipv4, anycast), "c")
        assert trace.delivered_to == "d"

    def test_advertise_requires_domain_member(self):
        net = square_domain()
        sched = EventScheduler()
        igp = LinkStateRouting(net, net.domains[1], sched)
        with pytest.raises(RoutingError):
            igp.advertise_anycast("ghost", ipv4("240.0.0.1"))

    def test_supports_member_discovery_flag(self):
        assert LinkStateRouting.supports_member_discovery is True


class TestProtocolMechanics:
    def test_message_counting(self):
        net = square_domain()
        igp, _ = converge(net)
        assert igp.stats.sent > 0
        assert igp.stats.delivered > 0

    def test_refresh_without_change_is_quiet(self):
        net = square_domain()
        igp, sched = converge(net)
        sent_before = igp.stats.sent
        igp.refresh()
        sched.run_until_idle()
        assert igp.stats.sent == sent_before

    def test_igp_distance(self):
        net = square_domain()
        igp, _ = converge(net)
        assert igp.igp_distance("a", "c") == 2.0
        assert igp.igp_distance("a", "a") == 0.0
