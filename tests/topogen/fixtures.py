"""Named topology fixtures for fault-injection and failover tests.

Each :class:`FailoverCase` is a single-domain topology where the
paper's anycast failover claim is decidable by inspection: the probe
node has a unique nearest member (the *victim*), the victim is not a
cut vertex (crashing it must not partition the probe from the group),
and a unique next-nearest member (the *heir*) exists.  Tests
parametrize these cases over both IGP kinds — the claim in Section 3.2
is explicitly IGP-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.net import Domain, Network, Prefix

from tests.conftest import build_hub_network, build_two_domain_network

__all__ = ["FailoverCase", "FAILOVER_CASES", "build_hub_network",
           "build_two_domain_network", "line_domain", "ring_domain",
           "theta_domain"]


def _single_domain(name: str) -> Network:
    net = Network()
    net.add_domain(Domain(asn=1, name=name, prefix=Prefix.parse("10.1.0.0/16")))
    return net


def line_domain(n: int = 5) -> Network:
    """r0 - r1 - ... - r(n-1), unit costs."""
    net = _single_domain("line")
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i in range(n - 1):
        net.add_link(f"r{i}", f"r{i + 1}")
    return net


def ring_domain(n: int = 6) -> Network:
    """A unit-cost ring of *n* routers: no single crash partitions it."""
    net = _single_domain("ring")
    for i in range(n):
        net.add_router(f"r{i}", 1)
    for i in range(n):
        net.add_link(f"r{i}", f"r{(i + 1) % n}")
    return net


def theta_domain() -> Network:
    """Two hubs joined by three disjoint 2-hop branches (a theta graph).

        r0 - a - r5
        r0 - b - r5
        r0 - c - r5

    Dense enough that any single router crash leaves the rest
    biconnected through the other branches.
    """
    net = _single_domain("theta")
    net.add_router("r0", 1)
    net.add_router("r5", 1)
    for mid in ("a", "b", "c"):
        net.add_router(mid, 1)
        net.add_link("r0", mid)
        net.add_link(mid, "r5")
    return net


@dataclass(frozen=True)
class FailoverCase:
    """One decidable anycast-failover scenario (see module docstring)."""

    name: str
    build: Callable[[], Network]
    members: Tuple[str, ...]
    probe: str
    victim: str  # unique nearest member from `probe`
    heir: str  # unique next-nearest member once `victim` is down


FAILOVER_CASES = (
    # Probe r2 sits between the members: r1 at cost 1, r4 at cost 2.
    FailoverCase(name="line", build=line_domain,
                 members=("r1", "r4"), probe="r2", victim="r1", heir="r4"),
    # On the 6-ring from r2: r1 at cost 1; after r1 dies, r4 at cost 2
    # via r3 (the long way to r1's side is gone with r1).
    FailoverCase(name="ring", build=ring_domain,
                 members=("r1", "r4"), probe="r2", victim="r1", heir="r4"),
    # From branch router `a`: hub r0 at cost 1, hub r5 at cost 1 is a
    # tie — so make members a hub and a branch: r0 at 1, c at 2.
    FailoverCase(name="theta", build=theta_domain,
                 members=("r0", "c"), probe="a", victim="r0", heir="c"),
)
