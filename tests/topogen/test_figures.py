"""Tests that the figure topologies match the paper's drawings."""

import pytest

from repro.net import Relationship
from repro.core.orchestrator import Orchestrator
from repro.topogen import figure1, figure2, figure3, figure4


@pytest.mark.parametrize("builder", [figure1, figure2, figure3])
def test_all_figures_converge_and_are_fully_reachable(builder):
    fig = builder()
    orch = Orchestrator(fig.network)
    orch.converge()
    from repro.net import ipv4_packet

    nodes = sorted(fig.network.nodes)
    src = nodes[0]
    for dst in nodes[1:]:
        packet = ipv4_packet(fig.network.node(src).ipv4,
                             fig.network.node(dst).ipv4)
        trace = orch.forward(packet, src)
        assert trace.delivered, (builder.__name__, src, dst, trace)


class TestFigure1:
    def test_cast(self):
        fig = figure1()
        assert set(fig.domains) == {"W", "X", "Y", "Z"}
        assert fig.node_id("client_C") == "client_c"
        client = fig.network.node("client_c")
        assert client.domain_id == fig.asn("Z")

    def test_provider_chain(self):
        fig = figure1()
        z, y, x, w = (fig.asn(n) for n in "ZYXW")
        assert fig.network.domains[z].relationship_with(y) is Relationship.PROVIDER
        assert fig.network.domains[y].relationship_with(x) is Relationship.PROVIDER
        assert fig.network.domains[x].relationship_with(w) is Relationship.PROVIDER


class TestFigure2:
    def test_cast(self):
        fig = figure2()
        assert set(fig.domains) == {"P", "Q", "D", "X", "Y", "Z"}
        for name in ("X", "Y", "Z"):
            assert fig.node_id(f"host_{name}") in fig.network.nodes

    def test_y_is_dual_homed(self):
        fig = figure2()
        y = fig.network.domains[fig.asn("Y")]
        assert set(y.providers()) == {fig.asn("P"), fig.asn("Q")}

    def test_z_single_homed_to_q(self):
        fig = figure2()
        z = fig.network.domains[fig.asn("Z")]
        assert z.providers() == [fig.asn("Q")]


class TestFigure3:
    def test_m_and_o_peer(self):
        fig = figure3()
        m, o = fig.asn("M"), fig.asn("O")
        assert fig.network.domains[m].relationship_with(o) is Relationship.PEER

    def test_client_domain_customer_of_o(self):
        fig = figure3()
        s = fig.network.domains[fig.asn("S")]
        assert s.providers() == [fig.asn("O")]

    def test_named_routers_exist(self):
        fig = figure3()
        for role in ("border_X", "router_Z", "border_Y"):
            assert fig.node_id(role) in fig.network.nodes


class TestFigure4:
    def test_vn_chain_and_legacy_chain(self):
        fig = figure4()
        a, b, c, m, n, z = (fig.asn(x) for x in "ABCMNZ")
        domains = fig.network.domains
        # Legacy chain: A -(cust)- M -(peer)- N -(cust)- Z.
        assert domains[a].relationship_with(m) is Relationship.PROVIDER
        assert domains[m].relationship_with(n) is Relationship.PEER
        assert domains[z].relationship_with(n) is Relationship.PROVIDER
        # vN chain: A -(peer)- B -(peer)- C -(cust)- Z.
        assert domains[a].relationship_with(b) is Relationship.PEER
        assert domains[b].relationship_with(c) is Relationship.PEER
        assert domains[z].relationship_with(c) is Relationship.PROVIDER

    def test_legacy_path_is_the_only_ipv4_route_a_to_z(self):
        """The vN chain's peer links export no transit to A, so A's
        only IPv(N-1) path to Z is A -> M -> N -> Z."""
        fig = figure4()
        from repro.core.orchestrator import Orchestrator

        orch = Orchestrator(fig.network)
        orch.converge()
        path = orch.bgp.as_path_to(fig.asn("A"),
                                   fig.network.domains[fig.asn("Z")].prefix)
        assert path == (fig.asn("M"), fig.asn("N"), fig.asn("Z"))

    def test_hosts(self):
        fig = figure4()
        assert fig.network.node(fig.node_id("host_A")).domain_id == fig.asn("A")
        assert fig.network.node(fig.node_id("host_Z")).domain_id == fig.asn("Z")
