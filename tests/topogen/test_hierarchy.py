"""Unit tests for the tiered internet generator."""

import pytest

from repro.net import LinkScope, Relationship, TopologyError
from repro.topogen import InternetSpec, generate_internet, small_internet


class TestStructure:
    def test_domain_counts(self):
        g = generate_internet(InternetSpec(n_tier1=2, n_tier2=4, n_stub=6, seed=1))
        assert len(g.tier1) == 2
        assert len(g.tier2) == 4
        assert len(g.stubs) == 6
        assert len(g.network.domains) == 12

    def test_tier1_clique_of_peers(self):
        g = generate_internet(InternetSpec(n_tier1=3, n_tier2=0, n_stub=0, seed=1))
        for a in g.tier1:
            for b in g.tier1:
                if a == b:
                    continue
                assert (g.network.domains[a].relationship_with(b)
                        is Relationship.PEER)

    def test_tier2_has_tier1_provider(self):
        g = generate_internet(InternetSpec(seed=2))
        for asn in g.tier2:
            providers = g.network.domains[asn].providers()
            assert providers
            assert all(p in g.tier1 for p in providers)

    def test_stub_has_tier2_provider(self):
        g = generate_internet(InternetSpec(seed=2))
        for asn in g.stubs:
            providers = g.network.domains[asn].providers()
            assert providers
            assert all(p in g.tier2 for p in providers)

    def test_hosts_in_stubs(self):
        g = generate_internet(InternetSpec(hosts_per_stub=3, seed=0))
        for asn in g.stubs:
            assert len(g.network.domains[asn].hosts) == 3

    def test_unique_prefixes(self):
        g = small_internet(0)
        prefixes = [d.prefix for d in g.network.domains.values()]
        assert len(set(prefixes)) == len(prefixes)

    def test_inter_domain_links_use_borders(self):
        g = small_internet(0)
        for link in g.network.links.values():
            if link.scope is LinkScope.INTER_DOMAIN:
                for end in (link.a, link.b):
                    node = g.network.node(end)
                    assert node.is_border

    def test_tiers_recorded(self):
        g = small_internet(0)
        assert all(g.network.domains[a].tier == 1 for a in g.tier1)
        assert all(g.network.domains[a].tier == 3 for a in g.stubs)


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = generate_internet(InternetSpec(seed=5))
        b = generate_internet(InternetSpec(seed=5))
        assert sorted(a.network.links) == sorted(b.network.links)
        assert a.hosts == b.hosts

    def test_different_seed_differs(self):
        a = generate_internet(InternetSpec(seed=5))
        b = generate_internet(InternetSpec(seed=6))
        assert sorted(a.network.links) != sorted(b.network.links)


class TestLimits:
    def test_needs_tier1(self):
        with pytest.raises(TopologyError):
            generate_internet(InternetSpec(n_tier1=0))

    def test_domain_cap(self):
        with pytest.raises(TopologyError):
            generate_internet(InternetSpec(n_tier1=1, n_tier2=0, n_stub=300))

    def test_all_asns(self):
        g = generate_internet(InternetSpec(n_tier1=1, n_tier2=2, n_stub=3, seed=0))
        assert sorted(g.all_asns()) == list(range(1, 7))
