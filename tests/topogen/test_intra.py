"""Unit tests for router-level topology generators."""

import random

import pytest

from repro.net import Domain, Network, Prefix, TopologyError
from repro.topogen.intra import (build_domain_routers, grid_domain,
                                 random_domain, ring_domain, star_domain)


def fresh_network(asn=1):
    net = Network()
    net.add_domain(Domain(asn=asn, name=f"as{asn}",
                          prefix=Prefix.parse(f"10.{asn}.0.0/16")))
    return net


def assert_connected(net, ids):
    for target in ids[1:]:
        assert net.shortest_path(ids[0], target) is not None, target


class TestRing:
    def test_shape(self):
        net = fresh_network()
        ids = ring_domain(net, 1, 5)
        assert len(ids) == 5
        for rid in ids:
            assert len(net.neighbors(rid)) == 2
        assert_connected(net, ids)

    def test_two_routers_single_link(self):
        net = fresh_network()
        ids = ring_domain(net, 1, 2)
        assert len(net.links) == 1
        assert_connected(net, ids)

    def test_single_router(self):
        net = fresh_network()
        assert len(ring_domain(net, 1, 1)) == 1

    def test_border_count(self):
        net = fresh_network()
        ring_domain(net, 1, 4, border_count=2)
        assert len(net.domains[1].border_routers) == 2

    def test_zero_routers_rejected(self):
        with pytest.raises(TopologyError):
            ring_domain(fresh_network(), 1, 0)


class TestStar:
    def test_hub_degree(self):
        net = fresh_network()
        ids = star_domain(net, 1, 6)
        assert len(net.neighbors(ids[0])) == 5
        assert_connected(net, ids)


class TestGrid:
    def test_dimensions(self):
        net = fresh_network()
        ids = grid_domain(net, 1, 3, 4)
        assert len(ids) == 12
        assert len(net.links) == 3 * 3 + 2 * 4
        assert_connected(net, ids)

    def test_bad_dimensions(self):
        with pytest.raises(TopologyError):
            grid_domain(fresh_network(), 1, 0, 3)


class TestRandom:
    def test_connected(self):
        net = fresh_network()
        ids = random_domain(net, 1, 12, extra_edges=4,
                            rng=random.Random(7))
        assert_connected(net, ids)

    def test_deterministic_for_seed(self):
        def build(seed):
            net = fresh_network()
            random_domain(net, 1, 10, extra_edges=3, rng=random.Random(seed))
            return sorted((k, l.cost) for k, l in net.links.items())

        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_costs_in_range(self):
        net = fresh_network()
        random_domain(net, 1, 8, rng=random.Random(1), cost_range=(2.0, 3.0))
        assert all(2.0 <= l.cost <= 3.0 for l in net.links.values())

    def test_rng_is_required(self):
        with pytest.raises(TopologyError, match="seeded rng"):
            random_domain(fresh_network(), 1, 8)


class TestDispatch:
    @pytest.mark.parametrize("style", ["ring", "star", "random"])
    def test_styles(self, style):
        net = fresh_network()
        ids = build_domain_routers(net, 1, 5, style, rng=random.Random(0))
        assert len(ids) == 5
        assert_connected(net, ids)

    def test_unknown_style(self):
        with pytest.raises(TopologyError):
            build_domain_routers(fresh_network(), 1, 3, "mobius")

    def test_random_style_requires_rng(self):
        with pytest.raises(TopologyError, match="seeded rng"):
            build_domain_routers(fresh_network(), 1, 5, "random")
