"""Scale-tier generator: power-law shape, connectivity, determinism.

The satellite contract for ``repro.topogen.scale``:

* the transit core's degree distribution has a power-law tail (a few
  hypergiants hold a disproportionate share of AS-level edges);
* no AS is isolated — every domain has at least one inter-domain
  relationship, and host-to-host delivery works across the fringe;
* the generated network is a pure function of the spec, including
  across *processes* (fixed-seed determinism, rule D1);
* default-routed stubs stay out of BGP entirely.
"""

import itertools
import json
import subprocess
import sys

import pytest

from repro.core.orchestrator import Orchestrator
from repro.net.errors import TopologyError
from repro.net.packet import ipv4_packet
from repro.net.serialize import network_from_dict, network_to_dict
from repro.topogen.scale import (GeneratedScaleInternet, ScaleSpec,
                                 generate_scale_internet, scale_rng,
                                 spec_for_router_budget)


@pytest.fixture(scope="module")
def gen():
    return generate_scale_internet(ScaleSpec(n_transit=30, n_stub=300, seed=7))


class TestShape:
    def test_counts_match_spec(self, gen):
        spec = gen.spec
        stats = gen.network.stats()
        assert len(gen.transit) == spec.n_transit
        assert len(gen.stubs) == spec.n_stub
        assert stats["routers"] == spec.total_routers()
        assert stats["hosts"] == spec.n_stub * spec.hosts_per_stub

    def test_degree_distribution_has_power_law_tail(self, gen):
        degrees = sorted((gen.as_degree(asn) for asn in gen.transit),
                         reverse=True)
        # Heavy tail, not a flat profile: the top AS dominates the
        # median, and the top decile holds an outsized edge share.
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= 4 * max(1, median)
        top = max(1, len(degrees) // 10)
        assert sum(degrees[:top]) >= 0.25 * sum(degrees)

    def test_no_isolated_ases(self, gen):
        for asn in gen.all_asns():
            assert gen.as_degree(asn) >= 1, f"AS{asn} is isolated"

    def test_stub_prefixes_nest_inside_provider_aggregate(self, gen):
        for stub_asn, (_, provider_asn, _) in sorted(gen.uplinks.items()):
            stub = gen.network.domains[stub_asn]
            provider = gen.network.domains[provider_asn]
            assert stub.prefix.plen == 24
            assert provider.prefix.contains(stub.prefix)

    def test_spec_validation_rejects_bad_shapes(self):
        with pytest.raises(TopologyError):
            generate_scale_internet(ScaleSpec(n_transit=2, t1_clique=3))
        with pytest.raises(TopologyError):
            generate_scale_internet(ScaleSpec(n_transit=1, n_stub=500))
        with pytest.raises(TopologyError):
            spec_for_router_budget(10)


class TestDefaultRoutedFringe:
    def test_stubs_are_default_routed_and_transit_is_not(self, gen):
        for asn in gen.stubs:
            assert gen.network.domains[asn].default_routed
        for asn in gen.transit:
            assert not gen.network.domains[asn].default_routed

    def test_bgp_speakers_exist_only_for_transit(self, gen):
        orch = Orchestrator(gen.network, seed=7)
        assert sorted(orch.bgp.speakers) == gen.transit
        orch.converge()
        for asn in gen.transit:
            # Transit loc-ribs never carry stub /24s — stubs ride the
            # provider aggregate plus static routes.
            for prefix in orch.bgp.speaker(asn).loc_rib:
                assert prefix.plen == 16

    def test_cross_stub_delivery(self, gen):
        orch = Orchestrator(gen.network, seed=7)
        orch.converge()
        net = gen.network
        hosts = gen.hosts
        pairs = list(itertools.islice(
            itertools.combinations(hosts[:40], 2), 150))
        for a, b in pairs:
            trace = orch.forward(
                ipv4_packet(net.node(a).ipv4, net.node(b).ipv4), a,
                strict=True)
            assert trace.delivered, f"{a} -> {b} failed"


class TestDeterminism:
    def test_same_seed_same_network(self):
        spec = ScaleSpec(n_transit=10, n_stub=60, seed=11)
        a = network_to_dict(generate_scale_internet(spec).network)
        b = network_to_dict(generate_scale_internet(spec).network)
        assert a == b

    def test_different_seed_different_network(self):
        a = network_to_dict(generate_scale_internet(
            ScaleSpec(n_transit=10, n_stub=60, seed=1)).network)
        b = network_to_dict(generate_scale_internet(
            ScaleSpec(n_transit=10, n_stub=60, seed=2)).network)
        assert a != b

    def test_deterministic_across_processes(self):
        script = (
            "import json, sys;"
            "from repro.topogen.scale import ScaleSpec, generate_scale_internet;"
            "from repro.net.serialize import network_to_dict;"
            "net = generate_scale_internet(ScaleSpec(n_transit=8, n_stub=40,"
            " seed=5)).network;"
            "json.dump(network_to_dict(net), sys.stdout, sort_keys=True)"
        )
        runs = [subprocess.run([sys.executable, "-c", script],
                               capture_output=True, text=True, check=True)
                for _ in range(2)]
        assert runs[0].stdout == runs[1].stdout
        here = network_to_dict(generate_scale_internet(
            ScaleSpec(n_transit=8, n_stub=40, seed=5)).network)
        assert json.loads(runs[0].stdout) == json.loads(
            json.dumps(here, sort_keys=True))

    def test_per_as_streams_are_independent(self):
        # Same (asn, seed) -> same stream; different asn -> different.
        assert scale_rng(3, 9).random() == scale_rng(3, 9).random()
        assert scale_rng(3, 9).random() != scale_rng(4, 9).random()

    def test_serialize_round_trip_preserves_default_routed(self, gen):
        doc = network_to_dict(gen.network)
        rebuilt = network_from_dict(doc)
        for asn in gen.stubs[:10]:
            assert rebuilt.domains[asn].default_routed
        assert network_to_dict(rebuilt) == doc
