"""Unit tests for workload generators."""

import pytest

from repro.net.errors import ReproError
from repro.topogen import small_internet
from repro.trace import (all_pairs, client_server, gravity_pairs, pair_stream,
                         sources_for_probes, uniform_pairs)


@pytest.fixture(scope="module")
def net():
    return small_internet(0).network


class TestUniform:
    def test_count_and_validity(self, net):
        pairs = uniform_pairs(net, 50, seed=1)
        assert len(pairs) == 50
        for a, b in pairs:
            assert a != b
            assert net.node(a).is_host and net.node(b).is_host

    def test_deterministic(self, net):
        assert uniform_pairs(net, 20, seed=3) == uniform_pairs(net, 20, seed=3)
        assert uniform_pairs(net, 20, seed=3) != uniform_pairs(net, 20, seed=4)


class TestAllPairs:
    def test_size(self, net):
        hosts = [n for n in net.nodes.values() if n.is_host]
        pairs = all_pairs(net)
        assert len(pairs) == len(hosts) * (len(hosts) - 1)
        assert len(set(pairs)) == len(pairs)


class TestClientServer:
    def test_servers_bounded(self, net):
        pairs = client_server(net, 40, n_servers=2, seed=0)
        endpoints = {a for a, _ in pairs} | {b for _, b in pairs}
        # Every pair touches a server; with 2 servers the server side
        # of each pair comes from a 2-element set.
        servers = set()
        for a, b in pairs:
            servers.add(a if a in servers or True else b)
        assert len(pairs) == 40

    def test_too_many_servers_rejected(self, net):
        hosts = sum(1 for n in net.nodes.values() if n.is_host)
        with pytest.raises(ReproError):
            client_server(net, 5, n_servers=hosts)


class TestGravity:
    def test_pairs_valid(self, net):
        pairs = gravity_pairs(net, 30, seed=2)
        assert len(pairs) == 30
        assert all(a != b for a, b in pairs)


class TestDispatch:
    @pytest.mark.parametrize("pattern", ["uniform", "client-server",
                                         "gravity", "all"])
    def test_patterns(self, net, pattern):
        pairs = pair_stream(net, pattern, 10, seed=0)
        assert pairs
        assert all(a != b for a, b in pairs)

    def test_unknown_pattern(self, net):
        with pytest.raises(ReproError):
            pair_stream(net, "fractal", 10)


class TestProbeSources:
    def test_one_per_domain(self, net):
        sources = sources_for_probes(net, per_domain=1, seed=0)
        domains = [net.node(s).domain_id for s in sources]
        assert len(domains) == len(set(domains))
        assert len(sources) == len(net.domains)

    def test_deterministic(self, net):
        assert (sources_for_probes(net, seed=1)
                == sources_for_probes(net, seed=1))
