"""Unit tests for IPvN addressing and relabeling."""

import pytest

from repro.net.errors import DeploymentError
from repro.vnbone.addressing import VnAddressPlan


@pytest.fixture
def plan(hub_network):
    return VnAddressPlan(hub_network, version=8)


class TestNativeAllocation:
    def test_sequential_native_addresses(self, plan):
        a = plan.allocate_native(2)
        b = plan.allocate_native(2)
        assert a != b
        assert plan.native_prefix(2).contains(a)
        assert plan.native_prefix(2).contains(b)

    def test_unknown_domain_rejected(self, plan):
        with pytest.raises(DeploymentError):
            plan.allocate_native(99)

    def test_domains_have_disjoint_blocks(self, plan):
        a = plan.allocate_native(2)
        assert not plan.native_prefix(3).contains(a)


class TestHostAddressing:
    def test_self_assignment_for_non_adopting_domain(self, hub_network, plan):
        address = plan.ensure_host_address("hz")
        assert address.is_self_assigned
        assert address.embedded_ipv4() == hub_network.node("hz").ipv4
        assert hub_network.node("hz").vn_address(8) == address

    def test_native_for_adopting_domain(self, hub_network, plan):
        hub_network.domains[2].deploy_version(8, {"x2"})
        address = plan.ensure_host_address("hx")
        assert not address.is_self_assigned
        assert plan.native_prefix(2).contains(address)

    def test_idempotent(self, plan):
        first = plan.ensure_host_address("hz")
        second = plan.ensure_host_address("hz")
        assert first == second
        assert plan.relabel_events == []

    def test_rejects_routers(self, plan):
        with pytest.raises(DeploymentError):
            plan.ensure_host_address("x2")

    def test_address_of_unassigned_is_none(self, plan):
        assert plan.address_of("hz") is None


class TestRelabeling:
    def test_adoption_relabels_self_assigned_hosts(self, hub_network, plan):
        before = plan.ensure_host_address("hx")
        assert before.is_self_assigned
        hub_network.domains[2].deploy_version(8, {"x2"})
        count = plan.relabel_domain(2)
        assert count == 1
        after = plan.address_of("hx")
        assert after is not None and not after.is_self_assigned
        assert plan.relabel_events == ["hx"]

    def test_rollback_relabels_back_to_self(self, hub_network, plan):
        hub_network.domains[2].deploy_version(8, {"x2"})
        plan.ensure_host_address("hx")
        hub_network.domains[2].undeploy_version(8)
        plan.relabel_domain(2)
        address = plan.address_of("hx")
        assert address is not None and address.is_self_assigned

    def test_unassigned_hosts_not_relabeled(self, hub_network, plan):
        hub_network.domains[2].deploy_version(8, {"x2"})
        assert plan.relabel_domain(2) == 0

    def test_ensure_triggers_relabel_lazily(self, hub_network, plan):
        before = plan.ensure_host_address("hx")
        hub_network.domains[2].deploy_version(8, {"x2"})
        after = plan.ensure_host_address("hx")
        assert before != after
        assert plan.relabel_events == ["hx"]
