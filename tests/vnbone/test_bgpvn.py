"""Tests for the layered BGPvN routing mode."""

import pytest

from repro.net.address import Prefix
from repro.net.errors import ConvergenceError, DeploymentError, RoutingError
from repro.anycast import DefaultRootedAnycast
from repro.core.evolution import EvolvableInternet
from repro.core.metrics import measure_reachability
from repro.topogen import InternetSpec
from repro.vnbone import VnDeployment
from repro.vnbone.bgpvn import BgpVnRoute, BgpVnSolver
from repro.vnbone.routing import OwnerEntry
from repro.vnbone.state import VnAction, native_domain_prefix


def dummy_entry(asn: int) -> OwnerEntry:
    return OwnerEntry(prefix=native_domain_prefix(asn), owner=f"r{asn}",
                      action=VnAction.LOCAL)


def origination(asn: int, metric: float = 0.0) -> BgpVnRoute:
    return BgpVnRoute(prefix=native_domain_prefix(asn), as_path=(asn,),
                      metric=metric, entry=dummy_entry(asn))


class TestSolver:
    def test_line_propagation(self):
        adjacency = {1: {2}, 2: {1, 3}, 3: {2}}
        solver = BgpVnSolver(adjacency, {1: [origination(1)], 2: [], 3: []})
        solver.converge()
        route = solver.routes_of(3)[native_domain_prefix(1)]
        assert route.as_path == (3, 2, 1)

    def test_shortest_path_wins(self):
        adjacency = {1: {2, 3}, 2: {1, 4}, 3: {1, 4}, 4: {2, 3}}
        solver = BgpVnSolver(adjacency, {4: [origination(4)],
                                         1: [], 2: [], 3: []})
        solver.converge()
        route = solver.routes_of(1)[native_domain_prefix(4)]
        assert len(route.as_path) == 3  # via 2 or 3, one hop each

    def test_metric_breaks_length_tie(self):
        prefix = native_domain_prefix(9)
        entry = dummy_entry(9)
        adjacency = {1: {2, 3}, 2: {1}, 3: {1}}
        originations = {
            2: [BgpVnRoute(prefix=prefix, as_path=(2,), metric=50.0,
                           entry=entry)],
            3: [BgpVnRoute(prefix=prefix, as_path=(3,), metric=10.0,
                           entry=entry)],
            1: [],
        }
        solver = BgpVnSolver(adjacency, originations)
        solver.converge()
        assert solver.routes_of(1)[prefix].as_path == (1, 3)

    def test_loop_prevention(self):
        adjacency = {1: {2}, 2: {1}}
        solver = BgpVnSolver(adjacency, {1: [origination(1)], 2: []})
        solver.converge()
        for routes in (solver.routes_of(1), solver.routes_of(2)):
            for route in routes.values():
                assert len(set(route.as_path)) == len(route.as_path)

    def test_partitioned_domains_have_no_route(self):
        adjacency = {1: {2}, 2: {1}, 3: set()}
        solver = BgpVnSolver(adjacency, {1: [origination(1)], 2: [], 3: []})
        solver.converge()
        assert native_domain_prefix(1) not in solver.routes_of(3)

    def test_round_budget(self):
        adjacency = {1: {2}, 2: {1}}
        solver = BgpVnSolver(adjacency, {1: [origination(1)], 2: []},
                             max_rounds=0)
        with pytest.raises(ConvergenceError):
            solver.converge()


@pytest.fixture
def internet():
    return EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=4, n_stub=6, hosts_per_stub=1,
                     seed=71), seed=71)


def layered_deployment(internet, adopters):
    scheme = DefaultRootedAnycast(internet.orchestrator, "layered",
                                  default_asn=adopters[0])
    deployment = VnDeployment(internet.orchestrator, scheme, version=8,
                              routing_mode="layered")
    for asn in adopters:
        deployment.deploy(asn)
    deployment.rebuild()
    return deployment


class TestLayeredMode:
    def test_unknown_mode_rejected(self, internet):
        scheme = DefaultRootedAnycast(internet.orchestrator, "bad",
                                      default_asn=internet.tier1_asns()[0])
        with pytest.raises(DeploymentError):
            VnDeployment(internet.orchestrator, scheme, version=8,
                         routing_mode="quantum")

    def test_universal_access(self, internet):
        adopters = [internet.tier1_asns()[0]] + internet.stub_asns()[:2]
        deployment = layered_deployment(internet, adopters)
        pairs = internet.host_pairs(sample=30)
        report = measure_reachability(internet.network, deployment.send,
                                      pairs)
        assert report.delivery_ratio == 1.0, report.failures

    def test_domain_routes_present(self, internet):
        """Every domain holds a BGPvN route for every member's address,
        originated by that member's domain."""
        adopters = [internet.tier1_asns()[0]] + internet.stub_asns()[:2]
        deployment = layered_deployment(internet, adopters)
        routing = deployment.routing
        for asn in adopters:
            for member, state in deployment.states.items():
                route = routing.domain_route(asn,
                                             Prefix.host(state.vn_address))
                assert route is not None, (asn, member)
                owner_asn = internet.network.node(member).domain_id
                assert route.origin_asn == owner_asn

    def test_reachable_members_covers_all_domains(self, internet):
        adopters = [internet.tier1_asns()[0]] + internet.stub_asns()[:2]
        deployment = layered_deployment(internet, adopters)
        member = sorted(deployment.members())[0]
        assert deployment.routing.reachable_members(member) == \
            deployment.members()

    def test_member_paths_unsupported(self, internet):
        deployment = layered_deployment(internet, [internet.tier1_asns()[0]])
        with pytest.raises(RoutingError):
            deployment.routing.path("a", "b")

    def test_matches_global_spf_delivery(self, internet):
        """Both modes must satisfy universal access on the same
        adoption pattern (paths may differ; delivery must not)."""
        adopters = [internet.tier1_asns()[0]] + internet.stub_asns()[:2]
        layered = layered_deployment(internet, adopters)
        scheme = DefaultRootedAnycast(internet.orchestrator, "spf9",
                                      default_asn=adopters[0])
        flat = VnDeployment(internet.orchestrator, scheme, version=9)
        for asn in adopters:
            flat.deploy(asn)
        flat.rebuild()
        pairs = internet.host_pairs(sample=25)
        layered_report = measure_reachability(internet.network, layered.send,
                                              pairs)
        flat_report = measure_reachability(internet.network, flat.send, pairs)
        assert layered_report.delivery_ratio == 1.0
        assert flat_report.delivery_ratio == 1.0
