"""Integration tests for the VnDeployment facade."""

import pytest

from repro.net import Outcome
from repro.net.errors import DeploymentError
from repro.anycast import DefaultRootedAnycast, GlobalAnycast
from repro.vnbone import EgressPolicy, VnDeployment, adoption_rng


@pytest.fixture
def deployment(converged_hub):
    scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
    return VnDeployment(converged_hub, scheme, version=8)


class TestLifecycle:
    def test_deploy_all_routers(self, converged_hub, deployment):
        chosen = deployment.deploy(2)
        assert chosen == {"x1", "x2"}
        assert deployment.members() == {"x1", "x2"}
        assert converged_hub.network.node("x1").vn_state_for(8) is not None

    def test_deploy_fraction_is_partial_and_deterministic(self, converged_hub,
                                                          deployment):
        chosen = deployment.deploy(2, fraction=0.5, rng=adoption_rng(2))
        assert len(chosen) == 1
        scheme2 = GlobalAnycast(converged_hub, "other")
        dep2 = VnDeployment(converged_hub, scheme2, version=9)
        assert dep2.deploy(2, fraction=0.5, rng=adoption_rng(2)) == chosen

    def test_deploy_fraction_requires_rng(self, deployment):
        with pytest.raises(DeploymentError, match="seeded rng"):
            deployment.deploy(2, fraction=0.5)

    def test_deploy_explicit_subset(self, deployment):
        assert deployment.deploy(2, router_ids={"x2"}) == {"x2"}
        assert deployment.members() == {"x2"}

    def test_invalid_fraction(self, deployment):
        with pytest.raises(DeploymentError):
            deployment.deploy(2, fraction=0.0)
        with pytest.raises(DeploymentError):
            deployment.deploy(2, fraction=1.5)

    def test_unknown_domain(self, deployment):
        with pytest.raises(DeploymentError):
            deployment.deploy(99)

    def test_expand(self, deployment):
        deployment.deploy(2, router_ids={"x2"})
        deployment.expand(2, {"x1"})
        assert deployment.members() == {"x1", "x2"}

    def test_expand_requires_prior_deploy(self, deployment):
        with pytest.raises(DeploymentError):
            deployment.expand(2, {"x1"})

    def test_undeploy_cleans_everything(self, converged_hub, deployment):
        deployment.deploy(2)
        deployment.rebuild()
        deployment.undeploy(2)
        deployment.rebuild()
        assert deployment.members() == set()
        assert converged_hub.network.node("x1").vn_state_for(8) is None
        assert not converged_hub.network.domains[2].deploys(8)

    def test_members_by_domain(self, deployment):
        deployment.deploy(2)
        deployment.deploy(3, router_ids={"y1"})
        assert deployment.members_by_domain() == {2: {"x1", "x2"}, 3: {"y1"}}
        assert deployment.adopting_asns() == {2, 3}

    def test_state_of_unknown_raises(self, deployment):
        with pytest.raises(DeploymentError):
            deployment.state_of("x1")


class TestRebuild:
    def test_rebuild_creates_tunnels_and_routes(self, deployment):
        deployment.deploy(2)
        deployment.deploy(1)
        deployment.rebuild()
        assert deployment.tunnels
        kinds = {t.kind for t in deployment.tunnels}
        assert "inter" in kinds
        state = deployment.state_of("x1")
        assert state.fib.route_count() > 0
        assert not deployment.needs_rebuild

    def test_vn_border_marked(self, deployment):
        deployment.deploy(2)
        deployment.deploy(1)
        deployment.rebuild()
        borders = {rid for rid, s in deployment.states.items() if s.is_vn_border}
        assert borders  # the tunnel endpoints across AS1-AS2

    def test_vn_fib_sizes(self, deployment):
        deployment.deploy(2)
        deployment.rebuild()
        sizes = deployment.vn_fib_sizes()
        assert set(sizes) == {"x1", "x2"}
        assert all(size > 0 for size in sizes.values())


class TestSend:
    def test_send_between_native_and_self_addressed(self, deployment):
        deployment.deploy(2)
        trace = deployment.send("hx", "hz")
        assert trace.outcome is Outcome.DELIVERED
        back = deployment.send("hz", "hx")
        assert back.outcome is Outcome.DELIVERED
        assert back.ingress_router in deployment.members()

    def test_send_between_two_self_addressed(self, deployment):
        deployment.deploy(1)  # only the hub deploys
        trace = deployment.send("hz", "hx")
        assert trace.outcome is Outcome.DELIVERED
        assert trace.vn_hops >= 0
        assert trace.encapsulations >= 1

    def test_send_native_to_native(self, deployment):
        deployment.deploy(2)
        deployment.deploy(4)
        trace = deployment.send("hx", "hz")
        assert trace.outcome is Outcome.DELIVERED
        # Destination now native: delivery must come through the vN FIB
        # host entry, not the fallback.
        assert trace.egress_router is not None

    def test_send_rebuilds_lazily(self, deployment):
        deployment.deploy(2)
        assert deployment.needs_rebuild
        deployment.send("hx", "hz")
        assert not deployment.needs_rebuild

    def test_send_requires_hosts(self, deployment):
        deployment.deploy(2)
        deployment.rebuild()
        with pytest.raises(DeploymentError):
            deployment.send("x1", "hz")


class TestHostAdvertisedMode:
    def test_register_and_deliver(self, converged_hub):
        scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
        deployment = VnDeployment(converged_hub, scheme, version=8,
                                  egress_policy=EgressPolicy.HOST_ADVERTISED,
                                  fallback_exit=False)
        deployment.deploy(2)
        deployment.rebuild()
        member = deployment.register_host("hz")
        assert member in deployment.members()
        trace = deployment.send("hx", "hz")
        assert trace.outcome is Outcome.DELIVERED

    def test_unregistered_destination_undeliverable(self, converged_hub):
        scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
        deployment = VnDeployment(converged_hub, scheme, version=8,
                                  egress_policy=EgressPolicy.HOST_ADVERTISED,
                                  fallback_exit=False)
        deployment.deploy(2)
        deployment.rebuild()
        trace = deployment.send("hx", "hz")
        assert trace.outcome is not Outcome.DELIVERED
