"""Unit tests for egress selection policies."""

import pytest

from repro.net import Prefix, ipv4
from repro.net.address import VNAddress
from repro.anycast import DefaultRootedAnycast
from repro.vnbone.egress import (EGRESS_AS_HOP_COST, EgressPolicy, HostRegistry,
                                 external_owner_entries)
from repro.vnbone.state import VnAction, vn_prefix_for_ipv4


class TestExternalOwnerEntries:
    def test_exit_immediately_advertises_nothing(self, converged_hub):
        entries = external_owner_entries(
            converged_hub.network, converged_hub.bgp, 8, ["x2"],
            EgressPolicy.EXIT_IMMEDIATELY, adopting_asns={2})
        assert entries == []

    def test_bgp_informed_covers_all_external_domains(self, converged_hub):
        entries = external_owner_entries(
            converged_hub.network, converged_hub.bgp, 8, ["x2"],
            EgressPolicy.BGP_INFORMED, adopting_asns={2})
        covered = {e.prefix for e in entries}
        expected = {vn_prefix_for_ipv4(converged_hub.network.domains[asn].prefix)
                    for asn in (1, 3, 4)}
        assert covered == expected
        assert all(e.action is VnAction.EGRESS for e in entries)
        assert all(e.egress_ipv4 is None for e in entries)

    def test_advertised_cost_scales_with_as_path(self, converged_hub):
        entries = external_owner_entries(
            converged_hub.network, converged_hub.bgp, 8, ["x2"],
            EgressPolicy.BGP_INFORMED, adopting_asns={2})
        by_prefix = {e.prefix: e for e in entries}
        # From X: W is one AS hop, Z is two.
        w_pfx = vn_prefix_for_ipv4(converged_hub.network.domains[1].prefix)
        z_pfx = vn_prefix_for_ipv4(converged_hub.network.domains[4].prefix)
        assert by_prefix[w_pfx].advertised_cost == 1 * EGRESS_AS_HOP_COST
        assert by_prefix[z_pfx].advertised_cost == 2 * EGRESS_AS_HOP_COST

    def test_proxy_threshold_filters(self, converged_hub):
        entries = external_owner_entries(
            converged_hub.network, converged_hub.bgp, 8, ["x2"],
            EgressPolicy.PROXY, adopting_asns={2}, proxy_threshold=1)
        covered = {e.prefix for e in entries}
        # Only W (1 hop from X) is proxied; Y and Z (2 hops) are not.
        assert covered == {vn_prefix_for_ipv4(
            converged_hub.network.domains[1].prefix)}

    def test_members_in_destination_path_multiple_owners(self, converged_hub):
        entries = external_owner_entries(
            converged_hub.network, converged_hub.bgp, 8, ["x2", "w2"],
            EgressPolicy.BGP_INFORMED, adopting_asns={1, 2})
        z_pfx = vn_prefix_for_ipv4(converged_hub.network.domains[4].prefix)
        owners = {e.owner: e.advertised_cost for e in entries if e.prefix == z_pfx}
        # W's member is 1 AS hop from Z; X's member is 2.
        assert owners["w2"] == 1 * EGRESS_AS_HOP_COST
        assert owners["x2"] == 2 * EGRESS_AS_HOP_COST

    def test_host_advertised_policy_advertises_nothing_here(self, converged_hub):
        entries = external_owner_entries(
            converged_hub.network, converged_hub.bgp, 8, ["x2"],
            EgressPolicy.HOST_ADVERTISED, adopting_asns={2})
        assert entries == []


class TestHostRegistry:
    def test_register_and_entries(self, converged_hub):
        registry = HostRegistry(version=8)
        host = converged_hub.network.node("hz")
        host.self_assign(8)
        registry.register("hz", "x2")
        entries = registry.owner_entries(converged_hub.network,
                                         live_members={"x2"})
        assert len(entries) == 1
        entry = entries[0]
        assert entry.owner == "x2"
        assert entry.egress_ipv4 == host.ipv4
        assert entry.prefix == Prefix.host(host.vn_address(8))

    def test_fate_sharing_with_dead_member(self, converged_hub):
        registry = HostRegistry(version=8)
        converged_hub.network.node("hz").self_assign(8)
        registry.register("hz", "x2")
        # The advertising router rolled back: advertisement dies with it.
        assert registry.owner_entries(converged_hub.network,
                                      live_members={"y2"}) == []

    def test_unaddressed_host_skipped(self, converged_hub):
        registry = HostRegistry(version=8)
        registry.register("hz", "x2")
        assert registry.owner_entries(converged_hub.network,
                                      live_members={"x2"}) == []

    def test_deregister(self, converged_hub):
        registry = HostRegistry(version=8)
        converged_hub.network.node("hz").self_assign(8)
        registry.register("hz", "x2")
        registry.deregister("hz")
        assert registry.registered_hosts == set()
        assert registry.advertiser_of("hz") is None

    def test_reregistration_replaces(self, converged_hub):
        registry = HostRegistry(version=8)
        converged_hub.network.node("hz").self_assign(8)
        registry.register("hz", "x2")
        registry.register("hz", "y2")
        assert registry.advertiser_of("hz") == "y2"
