"""Tests for host mobility over an IPvN."""

import pytest

from repro.core.evolution import EvolvableInternet
from repro.net.errors import DeploymentError, TopologyError
from repro.topogen import InternetSpec
from repro.vnbone.mobility import MobilityService


@pytest.fixture
def setup():
    internet = EvolvableInternet.generate(
        InternetSpec(n_tier1=2, n_tier2=4, n_stub=6, hosts_per_stub=1,
                     seed=88), seed=88)
    deployment = internet.new_deployment(version=8, scheme="default")
    deployment.deploy(deployment.scheme.default_asn)
    deployment.rebuild()
    return internet, deployment, MobilityService(deployment)


def new_home(internet, host_id):
    current = internet.network.node(host_id).domain_id
    asn = next(a for a in internet.stub_asns() if a != current)
    access = sorted(internet.network.domains[asn].routers)[0]
    return asn, access


class TestNetworkMoveHost:
    def test_locator_changes_and_old_dies(self, setup):
        internet, _, _ = setup
        host_id = internet.hosts()[0]
        host = internet.network.node(host_id)
        old_ipv4 = host.ipv4
        asn, access = new_home(internet, host_id)
        internet.network.move_host(host_id, asn, access)
        assert host.domain_id == asn
        assert host.ipv4 != old_ipv4
        assert internet.network.domains[asn].prefix.contains(host.ipv4)
        assert internet.network.node_by_ipv4(old_ipv4) is None
        assert internet.network.node_by_ipv4(host.ipv4) is host

    def test_old_attachment_cleaned(self, setup):
        internet, _, _ = setup
        host_id = internet.hosts()[0]
        old_access = internet.network.node(host_id).access_router
        asn, access = new_home(internet, host_id)
        internet.network.move_host(host_id, asn, access)
        assert internet.network.link_between(host_id, old_access) is None
        assert host_id not in internet.network.domains[
            internet.network.node(old_access).domain_id].hosts

    def test_move_requires_host(self, setup):
        internet, _, _ = setup
        router = sorted(internet.network.domains[1].routers)[0]
        asn, access = new_home(internet, internet.hosts()[0])
        with pytest.raises(TopologyError):
            internet.network.move_host(router, asn, access)

    def test_move_validates_access_router(self, setup):
        internet, _, _ = setup
        host_id = internet.hosts()[0]
        with pytest.raises(TopologyError):
            internet.network.move_host(host_id, internet.stub_asns()[0],
                                       "ghost")


class TestMobilityService:
    def test_identity_survives_move(self, setup):
        internet, deployment, mobility = setup
        mobile = internet.hosts()[0]
        identity = mobility.enable(mobile)
        asn, access = new_home(internet, mobile)
        record = mobility.move(mobile, asn, access)
        assert mobility.identity_of(mobile) == identity
        assert internet.network.node(mobile).vn_address(8) == identity
        assert record.old_ipv4 != record.new_ipv4

    def test_correspondent_reaches_moved_host(self, setup):
        internet, deployment, mobility = setup
        mobile, corr = internet.hosts()[0], internet.hosts()[-1]
        mobility.enable(mobile)
        before = mobility.reach(corr, mobile)
        assert before.delivered
        asn, access = new_home(internet, mobile)
        mobility.move(mobile, asn, access)
        after = mobility.reach(corr, mobile)
        assert after.delivered and after.delivered_to == mobile

    def test_ipv4_to_old_locator_breaks(self, setup):
        internet, deployment, mobility = setup
        mobile, corr = internet.hosts()[0], internet.hosts()[-1]
        mobility.enable(mobile)
        asn, access = new_home(internet, mobile)
        record = mobility.move(mobile, asn, access)
        trace = mobility.ipv4_reach_old_locator(corr, record)
        assert trace.delivered_to != mobile

    def test_two_consecutive_moves(self, setup):
        internet, deployment, mobility = setup
        mobile, corr = internet.hosts()[0], internet.hosts()[-1]
        mobility.enable(mobile)
        first_asn, first_access = new_home(internet, mobile)
        mobility.move(mobile, first_asn, first_access)
        second_asn = next(a for a in internet.stub_asns()
                          if a != first_asn)
        second_access = sorted(
            internet.network.domains[second_asn].routers)[0]
        mobility.move(mobile, second_asn, second_access)
        trace = mobility.reach(corr, mobile)
        assert trace.delivered and trace.delivered_to == mobile
        assert len(mobility.moves) == 2

    def test_move_requires_enable(self, setup):
        internet, _, mobility = setup
        with pytest.raises(DeploymentError):
            mobility.move(internet.hosts()[0], internet.stub_asns()[0], "x")

    def test_mobile_flag(self, setup):
        internet, _, mobility = setup
        host = internet.hosts()[0]
        assert not mobility.is_mobile(host)
        mobility.enable(host)
        assert mobility.is_mobile(host)

    def test_move_into_adopting_domain(self, setup):
        """Moving into an IPvN-deploying domain also works; the pinned
        identity wins over native relabeling."""
        internet, deployment, mobility = setup
        mobile, corr = internet.hosts()[0], internet.hosts()[-1]
        identity = mobility.enable(mobile)
        target = deployment.scheme.default_asn
        access = sorted(internet.network.domains[target].routers)[0]
        mobility.move(mobile, target, access)
        assert internet.network.node(mobile).vn_address(8) == identity
        trace = mobility.reach(corr, mobile)
        assert trace.delivered and trace.delivered_to == mobile
