"""Tests for the multicast IPvN instantiation."""

import pytest

from repro.net.address import VNAddress, ipv4
from repro.net.errors import DeploymentError
from repro.anycast import DefaultRootedAnycast
from repro.core.evolution import EvolvableInternet
from repro.topogen import InternetSpec
from repro.vnbone import VnDeployment
from repro.vnbone.multicast import (VN_MULTICAST_FLAG, enable_multicast,
                                    group_address, is_multicast)


class TestGroupAddresses:
    def test_group_address_is_multicast(self):
        assert is_multicast(group_address(1))
        assert group_address(1).value & VN_MULTICAST_FLAG

    def test_unicast_addresses_are_not(self):
        assert not is_multicast(VNAddress((5 << 32) | 1))
        assert not is_multicast(VNAddress.self_assigned(ipv4("10.0.0.1")))

    def test_group_ids_distinct(self):
        assert group_address(1) != group_address(2)

    def test_bad_group_id(self):
        with pytest.raises(DeploymentError):
            group_address(0)


@pytest.fixture
def mcast_setup(converged_hub):
    scheme = DefaultRootedAnycast(converged_hub, "ipv8", default_asn=2)
    deployment = VnDeployment(converged_hub, scheme, version=8)
    deployment.deploy(2)
    deployment.deploy(1)
    deployment.rebuild()
    service = enable_multicast(deployment)
    return converged_hub, deployment, service


class TestMembership:
    def test_join_and_receivers(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hx")
        service.join(group, "hz")
        assert service.receivers(group) == {"hx", "hz"}

    def test_leave(self, mcast_setup):
        orch, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hx")
        service.leave(group, "hx")
        assert service.receivers(group) == set()
        assert group not in orch.network.node("hx").vn_groups

    def test_join_requires_host(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        with pytest.raises(DeploymentError):
            service.join(group, "x1")

    def test_unknown_group(self, mcast_setup):
        _, _, service = mcast_setup
        with pytest.raises(DeploymentError):
            service.join(group_address(99), "hx")


class TestDelivery:
    def test_delivers_to_all_receivers(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hx")
        service.join(group, "hz")
        service.rebuild()
        trace = service.send("hx", group)
        assert trace.delivered_to == {"hx", "hz"}

    def test_source_in_non_adopting_domain(self, mcast_setup):
        """A source whose ISP never deployed IPv8 can still multicast:
        anycast finds the ingress, registration finds the core."""
        _, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hx")
        service.rebuild()
        trace = service.send("hz", group)  # hz's AS4 has no members
        assert "hx" in trace.delivered_to

    def test_receiver_in_non_adopting_domain(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hz")  # AS4 never deployed
        service.rebuild()
        trace = service.send("hx", group)
        assert "hz" in trace.delivered_to

    def test_non_receiver_gets_nothing(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hz")
        service.rebuild()
        trace = service.send("hx", group)
        assert "hx" not in trace.delivered_to

    def test_leave_stops_delivery(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        service.join(group, "hx")
        service.join(group, "hz")
        service.rebuild()
        service.leave(group, "hz")
        service.rebuild()
        trace = service.send("hx", group)
        assert trace.delivered_to == {"hx"}

    def test_empty_group_drops(self, mcast_setup):
        _, _, service = mcast_setup
        group = service.create_group()
        service.rebuild()
        trace = service.send("hx", group)
        assert trace.delivered_to == set()

    def test_unicast_unaffected_by_multicast_wrap(self, mcast_setup):
        _, deployment, service = mcast_setup
        group = service.create_group()
        service.join(group, "hz")
        service.rebuild()
        trace = deployment.send("hx", "hz")
        assert trace.delivered


class TestEfficiency:
    def make_internet(self):
        internet = EvolvableInternet.generate(
            InternetSpec(n_tier1=3, n_tier2=5, n_stub=10, hosts_per_stub=2,
                         seed=99))
        deployment = internet.new_deployment(version=8, scheme="default")
        deployment.deploy(deployment.scheme.default_asn)
        for asn in internet.stub_asns()[:2]:
            deployment.deploy(asn)
        deployment.rebuild()
        return internet, deployment, enable_multicast(deployment)

    def test_beats_unicast_fanout(self):
        internet, deployment, service = self.make_internet()
        group = service.create_group()
        receivers = internet.hosts()[2:10]
        for host in receivers:
            service.join(group, host)
        service.rebuild()
        src = internet.hosts()[0]
        trace = service.send(src, group)
        assert trace.delivered_all(set(receivers))
        unicast_cost, unicast_stress = service.unicast_equivalent_cost(
            src, group)
        assert trace.transmissions < unicast_cost
        assert trace.max_link_stress <= unicast_stress

    def test_replication_only_inside_multicast_walk(self, mcast_setup):
        """The unicast walk refuses VnReplicate (defensive check)."""
        orch, deployment, service = mcast_setup
        group = service.create_group()
        service.join(group, "hx")
        service.join(group, "hz")
        service.rebuild()
        from repro.net.packet import IPv4Header, vn_packet

        src = orch.network.node("hx")
        addr = deployment.plan.ensure_host_address("hx")
        packet = vn_packet(addr, group)
        packet.encapsulate(IPv4Header(src=src.ipv4,
                                      dst=deployment.scheme.address))
        trace = orch.forward(packet, "hx")  # unicast walk
        assert not trace.delivered
        assert "replication" in trace.drop_reason
