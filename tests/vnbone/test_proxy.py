"""Unit tests for advertising-by-proxy."""

import pytest

from repro.vnbone.proxy import ProxyAdvertiser


def advertiser(orch, threshold=1):
    return ProxyAdvertiser(orch.network, orch.bgp, version=8,
                           threshold=threshold)


class TestProxyAdvertiser:
    def test_negative_threshold_rejected(self, converged_hub):
        with pytest.raises(ValueError):
            ProxyAdvertiser(converged_hub.network, converged_hub.bgp, 8,
                            threshold=-1)

    def test_adjacent_member_proxies(self, converged_hub):
        proxy = advertiser(converged_hub, threshold=1)
        # Member in W (hub): adjacent to Y and Z, both external.
        proxies = proxy.proxies_for_domain(4, ["w2"], adopting_asns={1})
        assert proxies == ["w2"]

    def test_distant_member_does_not_proxy(self, converged_hub):
        proxy = advertiser(converged_hub, threshold=1)
        # Member in X is 2 AS hops from Z.
        assert proxy.proxies_for_domain(4, ["x2"], adopting_asns={2}) == []

    def test_higher_threshold_widens(self, converged_hub):
        proxy = advertiser(converged_hub, threshold=2)
        assert proxy.proxies_for_domain(4, ["x2"], adopting_asns={2}) == ["x2"]

    def test_coverage_counts(self, converged_hub):
        proxy = advertiser(converged_hub, threshold=1)
        coverage = proxy.coverage(["w2", "x2"], adopting_asns={1, 2})
        # External domains are Y (3) and Z (4); only W's member is
        # adjacent to them.
        assert coverage == {3: 1, 4: 1}

    def test_coverage_zero_when_no_proxies(self, converged_hub):
        proxy = advertiser(converged_hub, threshold=0)
        coverage = proxy.coverage(["x2"], adopting_asns={2})
        assert all(count == 0 for count in coverage.values())

    def test_owner_entries_tagged(self, converged_hub):
        proxy = advertiser(converged_hub, threshold=1)
        entries = proxy.owner_entries(["w2"], adopting_asns={1})
        assert entries
        assert all(e.origin == "proxy" for e in entries)
