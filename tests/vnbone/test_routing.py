"""Unit tests for vN-Bone routing (SPF, owner selection, the handler)."""

import pytest

from repro.net import Network, Domain, Prefix, ipv4
from repro.net.address import VNAddress
from repro.net.forwarding import VnDeliver, VnDrop, VnEgress, VnForward
from repro.net.packet import vn_packet
from repro.vnbone.routing import OwnerEntry, VnRouting, make_vn_handler
from repro.vnbone.state import VnAction, VnRouterState, vn_prefix_for_ipv4


def make_states(*specs):
    """specs: (router_id, {neighbor: cost})"""
    states = {}
    for index, (rid, neighbors) in enumerate(specs, start=1):
        state = VnRouterState(version=8, router_id=rid,
                              vn_address=VNAddress((1 << 32) | index))
        for nid, cost in neighbors.items():
            state.neighbors[nid] = cost
        states[rid] = state
    return states


def local_entry(states, rid):
    return OwnerEntry(prefix=Prefix.host(states[rid].vn_address), owner=rid,
                      action=VnAction.LOCAL, origin="intra")


class TestSpf:
    def test_line_distances_and_first_hops(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0, "c": 2.0}),
                             ("c", {"b": 2.0}))
        routing = VnRouting(Network(), 8)
        routing.compute(states, [local_entry(states, r) for r in states])
        assert routing.distance("a", "c") == 3.0
        entry = states["a"].fib.lookup(states["c"].vn_address)
        assert entry is not None
        assert entry.action is VnAction.FORWARD and entry.next_hop == "b"

    def test_asymmetric_neighbor_costs_symmetrized(self):
        states = make_states(("a", {"b": 5.0}), ("b", {}))
        states["b"].neighbors["a"] = 1.0  # cheaper view; min wins
        routing = VnRouting(Network(), 8)
        routing.compute(states, [local_entry(states, r) for r in states])
        assert routing.distance("a", "b") == 1.0

    def test_unreachable_member_no_route(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0}), ("c", {}))
        routing = VnRouting(Network(), 8)
        routing.compute(states, [local_entry(states, r) for r in states])
        assert routing.distance("a", "c") is None
        assert states["a"].fib.lookup(states["c"].vn_address) is None
        assert routing.reachable_members("a") == {"a", "b"}

    def test_path_reconstruction(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0, "c": 1.0}),
                             ("c", {"b": 1.0}))
        routing = VnRouting(Network(), 8)
        routing.compute(states, [local_entry(states, r) for r in states])
        assert routing.path("a", "c") == ["a", "b", "c"]
        assert routing.path("a", "a") == ["a"]


class TestOwnerSelection:
    def test_multiple_owners_nearest_wins(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0, "c": 1.0}),
                             ("c", {"b": 1.0}))
        external = vn_prefix_for_ipv4(Prefix.parse("10.9.0.0/16"))
        entries = [local_entry(states, r) for r in states]
        entries.append(OwnerEntry(prefix=external, owner="a",
                                  action=VnAction.EGRESS, advertised_cost=0.0))
        entries.append(OwnerEntry(prefix=external, owner="c",
                                  action=VnAction.EGRESS, advertised_cost=0.0))
        routing = VnRouting(Network(), 8)
        routing.compute(states, entries)
        target = VNAddress.self_assigned(ipv4("10.9.0.5"))
        entry_b = states["b"].fib.lookup(target)
        assert entry_b is not None and entry_b.action is VnAction.FORWARD
        entry_a = states["a"].fib.lookup(target)
        assert entry_a is not None and entry_a.action is VnAction.EGRESS

    def test_advertised_cost_dominates_distance(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0, "c": 1.0}),
                             ("c", {"b": 1.0}))
        external = vn_prefix_for_ipv4(Prefix.parse("10.9.0.0/16"))
        entries = [local_entry(states, r) for r in states]
        # a is nearer to b but advertises a much worse external cost.
        entries.append(OwnerEntry(prefix=external, owner="a",
                                  action=VnAction.EGRESS, advertised_cost=100.0))
        entries.append(OwnerEntry(prefix=external, owner="c",
                                  action=VnAction.EGRESS, advertised_cost=0.0))
        routing = VnRouting(Network(), 8)
        routing.compute(states, entries)
        entry_b = states["b"].fib.lookup(VNAddress.self_assigned(ipv4("10.9.0.5")))
        assert entry_b is not None and entry_b.next_hop == "c"

    def test_unreachable_owner_skipped(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0}), ("c", {}))
        external = vn_prefix_for_ipv4(Prefix.parse("10.9.0.0/16"))
        entries = [local_entry(states, r) for r in states]
        entries.append(OwnerEntry(prefix=external, owner="c",
                                  action=VnAction.EGRESS, advertised_cost=0.0))
        routing = VnRouting(Network(), 8)
        routing.compute(states, entries)
        assert states["a"].fib.lookup(
            VNAddress.self_assigned(ipv4("10.9.0.5"))) is None


class TestHandler:
    def make_node(self, state):
        from repro.net.node import Router

        node = Router(node_id=state.router_id, ipv4=ipv4("10.1.0.1"), domain_id=1)
        node.set_vn_state(state.version, state)
        return node

    def test_deliver_to_own_address(self):
        states = make_states(("a", {}))
        handler = make_vn_handler(8)
        node = self.make_node(states["a"])
        packet = vn_packet(VNAddress(9), states["a"].vn_address)
        assert isinstance(handler(node, packet), VnDeliver)

    def test_forward_entry(self):
        states = make_states(("a", {"b": 1.0}), ("b", {"a": 1.0}))
        routing = VnRouting(Network(), 8)
        routing.compute(states, [local_entry(states, r) for r in states])
        handler = make_vn_handler(8)
        node = self.make_node(states["a"])
        packet = vn_packet(VNAddress(9), states["b"].vn_address)
        decision = handler(node, packet)
        assert isinstance(decision, VnForward) and decision.next_vn_hop == "b"

    def test_fallback_exit_for_self_addressed(self):
        states = make_states(("a", {}))
        handler = make_vn_handler(8, fallback_exit=True)
        node = self.make_node(states["a"])
        dst = VNAddress.self_assigned(ipv4("10.9.0.7"))
        decision = handler(node, vn_packet(VNAddress(9), dst))
        assert isinstance(decision, VnEgress)
        assert decision.ipv4_dst == ipv4("10.9.0.7")

    def test_no_fallback_drops(self):
        states = make_states(("a", {}))
        handler = make_vn_handler(8, fallback_exit=False)
        node = self.make_node(states["a"])
        dst = VNAddress.self_assigned(ipv4("10.9.0.7"))
        assert isinstance(handler(node, vn_packet(VNAddress(9), dst)), VnDrop)

    def test_native_unroutable_drops_even_with_fallback(self):
        states = make_states(("a", {}))
        handler = make_vn_handler(8, fallback_exit=True)
        node = self.make_node(states["a"])
        decision = handler(node, vn_packet(VNAddress(9), VNAddress((5 << 32) | 1)))
        assert isinstance(decision, VnDrop)

    def test_wrong_version_drops(self):
        states = make_states(("a", {}))
        handler = make_vn_handler(9)
        node = self.make_node(states["a"])  # state is version 8
        packet = vn_packet(VNAddress(9, version=9), VNAddress(2, version=9))
        assert isinstance(handler(node, packet), VnDrop)

    def test_egress_entry_with_explicit_target(self):
        states = make_states(("a", {}))
        target = ipv4("10.2.0.3")
        from repro.vnbone.state import VnFibEntry

        host_addr = VNAddress((1 << 32) | 77)
        states["a"].fib.install(VnFibEntry(prefix=Prefix.host(host_addr),
                                           action=VnAction.EGRESS,
                                           egress_ipv4=target))
        handler = make_vn_handler(8)
        node = self.make_node(states["a"])
        decision = handler(node, vn_packet(VNAddress(9), host_addr))
        assert isinstance(decision, VnEgress) and decision.ipv4_dst == target
