"""Unit tests for IPvN router state, the VN FIB, and prefix mappings."""

import pytest

from repro.net.address import Prefix, VNAddress, ipv4
from repro.net.errors import RoutingError
from repro.vnbone.state import (VnAction, VnFib, VnFibEntry, VnRouterState,
                                native_domain_prefix, vn_prefix_for_ipv4)


class TestVnFibEntry:
    def test_forward_needs_next_hop(self):
        with pytest.raises(RoutingError):
            VnFibEntry(prefix=Prefix.host(VNAddress(1)),
                       action=VnAction.FORWARD)

    def test_egress_without_target_allowed(self):
        entry = VnFibEntry(prefix=Prefix.host(VNAddress(1)),
                           action=VnAction.EGRESS)
        assert entry.egress_ipv4 is None


class TestVnFib:
    def test_longest_prefix_match(self):
        fib = VnFib()
        broad = vn_prefix_for_ipv4(Prefix.parse("10.0.0.0/8"))
        narrow = vn_prefix_for_ipv4(Prefix.parse("10.1.0.0/16"))
        fib.install(VnFibEntry(prefix=broad, action=VnAction.FORWARD, next_hop="a"))
        fib.install(VnFibEntry(prefix=narrow, action=VnAction.FORWARD, next_hop="b"))
        address = VNAddress.self_assigned(ipv4("10.1.2.3"))
        entry = fib.lookup(address)
        assert entry is not None and entry.next_hop == "b"
        other = fib.lookup(VNAddress.self_assigned(ipv4("10.9.2.3")))
        assert other is not None and other.next_hop == "a"

    def test_native_and_self_spaces_disjoint(self):
        fib = VnFib()
        native = native_domain_prefix(7)
        fib.install(VnFibEntry(prefix=native, action=VnAction.FORWARD,
                               next_hop="n"))
        self_addr = VNAddress.self_assigned(ipv4("10.7.0.1"))
        assert fib.lookup(self_addr) is None
        assert fib.lookup(VNAddress((7 << 32) | 1)) is not None

    def test_clear_and_count(self):
        fib = VnFib()
        fib.install(VnFibEntry(prefix=Prefix.host(VNAddress(1)),
                               action=VnAction.LOCAL))
        assert fib.route_count() == 1
        fib.clear()
        assert fib.route_count() == 0
        assert len(fib) == 0

    def test_entries_listing(self):
        fib = VnFib()
        fib.install(VnFibEntry(prefix=Prefix.host(VNAddress(1)),
                               action=VnAction.LOCAL))
        fib.install(VnFibEntry(prefix=Prefix.host(VNAddress(2)),
                               action=VnAction.EGRESS, egress_ipv4=ipv4("1.1.1.1")))
        assert len(fib.entries()) == 2


class TestPrefixMappings:
    def test_vn_prefix_for_ipv4_covers_exactly_embedded_block(self):
        block = Prefix.parse("10.4.0.0/16")
        vn_pfx = vn_prefix_for_ipv4(block)
        assert vn_pfx.plen == 48
        inside = VNAddress.self_assigned(ipv4("10.4.9.9"))
        outside = VNAddress.self_assigned(ipv4("10.5.0.1"))
        native = VNAddress((4 << 32) | 1)
        assert vn_pfx.contains(inside)
        assert not vn_pfx.contains(outside)
        assert not vn_pfx.contains(native)

    def test_native_domain_prefix_covers_allocations(self):
        pfx = native_domain_prefix(12)
        assert pfx.contains(VNAddress((12 << 32) | 55))
        assert not pfx.contains(VNAddress((13 << 32) | 55))

    def test_native_domain_prefix_rejects_bad_asn(self):
        with pytest.raises(RoutingError):
            native_domain_prefix(0)

    def test_version_carried(self):
        pfx = vn_prefix_for_ipv4(Prefix.parse("10.0.0.0/8"), version=9)
        assert pfx.address.version == 9


class TestVnRouterState:
    def make(self):
        return VnRouterState(version=8, router_id="r1",
                             vn_address=VNAddress((1 << 32) | 1))

    def test_add_neighbor_keeps_cheapest(self):
        state = self.make()
        state.add_neighbor("r2", 5.0)
        state.add_neighbor("r2", 3.0)
        state.add_neighbor("r2", 9.0)
        assert state.neighbors["r2"] == 3.0

    def test_no_self_neighbor(self):
        with pytest.raises(RoutingError):
            self.make().add_neighbor("r1", 1.0)

    def test_remove_neighbor(self):
        state = self.make()
        state.add_neighbor("r2", 1.0)
        state.remove_neighbor("r2")
        state.remove_neighbor("r2")  # idempotent
        assert state.neighbor_ids() == []

    def test_neighbor_ids_sorted(self):
        state = self.make()
        state.add_neighbor("z", 1.0)
        state.add_neighbor("a", 1.0)
        assert state.neighbor_ids() == ["a", "z"]
