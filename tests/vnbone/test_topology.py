"""Unit tests for vN-Bone topology construction."""

import pytest

from repro.net import Domain, Network, Prefix, Relationship
from repro.net.errors import DeploymentError
from repro.core.orchestrator import Orchestrator
from repro.vnbone.topology import VnBoneTopology


def ring_and_line_network():
    """AS1: 6-router ring (link-state); AS2: 4-router line (DV);
    AS3: 2-router stub. Chain AS1 - AS2 - AS3."""
    net = Network()
    for asn in (1, 2, 3):
        net.add_domain(Domain(asn=asn, name=f"as{asn}",
                              prefix=Prefix.parse(f"10.{asn}.0.0/16")))
    ring = [f"a{i}" for i in range(6)]
    for rid in ring:
        net.add_router(rid, 1, is_border=rid == "a0")
    for i in range(6):
        net.add_link(ring[i], ring[(i + 1) % 6])
    line = [f"b{i}" for i in range(4)]
    for rid in line:
        net.add_router(rid, 2, is_border=rid in ("b0", "b3"))
    for i in range(3):
        net.add_link(line[i], line[i + 1])
    net.add_router("c0", 3, is_border=True)
    net.add_router("c1", 3)
    net.add_link("c0", "c1")
    net.connect_domains(2, 1, "b0", "a0", Relationship.PROVIDER)
    net.connect_domains(3, 2, "c0", "b3", Relationship.PROVIDER)
    return net


@pytest.fixture
def orch():
    orchestrator = Orchestrator(ring_and_line_network(),
                                igp_overrides={2: "distancevector"})
    orchestrator.converge()
    return orchestrator


def topo(orchestrator, k=2, anchor=None):
    return VnBoneTopology(orchestrator, version=8, k_neighbors=k,
                          anchor_asn=anchor)


def edges(tunnels):
    return {t.endpoints() for t in tunnels}


def is_connected(members, tunnels):
    adjacency = {m: set() for m in members}
    for t in tunnels:
        if t.a in adjacency and t.b in adjacency:
            adjacency[t.a].add(t.b)
            adjacency[t.b].add(t.a)
    seen = set()
    stack = [next(iter(members))]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency[node] - seen)
    return seen == set(members)


class TestIntraDomain:
    def test_k_closest_in_linkstate_domain(self, orch):
        members = {"a0", "a2", "a4"}
        tunnels = topo(orch, k=2).build({1: members}, {m: i for i, m in
                                                       enumerate(sorted(members))})
        assert is_connected(members, tunnels)
        # Ring distances a0-a2, a2-a4, a4-a0 are all 2: full triangle.
        assert edges(tunnels) == {("a0", "a2"), ("a2", "a4"), ("a0", "a4")}

    def test_k1_with_repair_stays_connected(self, orch):
        members = {"a0", "a1", "a3", "a4"}
        tunnels = topo(orch, k=1).build({1: members},
                                        {m: i for i, m in enumerate(sorted(members))})
        # k=1 pairs up (a0,a1) and (a3,a4); repair must bridge them.
        assert is_connected(members, tunnels)
        assert any(t.kind == "repair" for t in tunnels)

    def test_dv_domain_uses_bootstrap(self, orch):
        members = {"b0", "b1", "b3"}
        join = {"b3": 1, "b0": 2, "b1": 3}
        tunnels = topo(orch, k=1).build({2: members}, join)
        kinds = {t.kind for t in tunnels}
        assert kinds == {"bootstrap-intra"}
        assert is_connected(members, tunnels)
        # b0 joined second: connects to b3 (the only earlier member).
        assert ("b0", "b3") in edges(tunnels)

    def test_single_member_no_intra_tunnels(self, orch):
        tunnels = topo(orch).build({1: {"a0"}}, {"a0": 1})
        assert tunnels == []

    def test_k_must_be_positive(self, orch):
        with pytest.raises(DeploymentError):
            VnBoneTopology(orch, version=8, k_neighbors=0)


class TestInterDomain:
    def test_adjacent_adopters_tunnel_over_peering_link(self, orch):
        members = {1: {"a2"}, 2: {"b2"}}
        join = {"a2": 1, "b2": 2}
        tunnels = topo(orch).build(members, join)
        inter = [t for t in tunnels if t.kind == "inter"]
        assert len(inter) == 1
        # Tunnel endpoints are the members closest to the border routers.
        assert inter[0].endpoints() == ("a2", "b2")
        # Cost includes the intra paths to the borders plus the link.
        assert inter[0].cost == pytest.approx(2 + 1 + 2)

    def test_isolated_adopter_bootstraps(self, orch):
        # AS1 and AS3 adopt; AS2 between them does not.
        members = {1: {"a2"}, 3: {"c1"}}
        join = {"a2": 1, "c1": 2}
        tunnels = topo(orch).build(members, join)
        kinds = {t.kind for t in tunnels}
        assert "bootstrap-inter" in kinds or "repair" in kinds
        assert is_connected({"a2", "c1"}, tunnels)

    def test_anchor_connectivity_rule(self, orch):
        members = {1: {"a2"}, 3: {"c1"}}
        join = {"a2": 1, "c1": 2}
        tunnels = topo(orch, anchor=1).build(members, join)
        assert is_connected({"a2", "c1"}, tunnels)

    def test_three_domains_fully_connected(self, orch):
        members = {1: {"a0", "a3"}, 2: {"b1"}, 3: {"c0"}}
        join = {m: i for i, m in enumerate(["a0", "a3", "b1", "c0"])}
        tunnels = topo(orch, anchor=1).build(members, join)
        assert is_connected({"a0", "a3", "b1", "c0"}, tunnels)


class TestCongruence:
    def test_congruent_when_deployment_contiguous(self, orch):
        members = {1: {"a0"}, 2: {"b0"}}
        tunnels = topo(orch).build(members, {"a0": 1, "b0": 2})
        report = topo(orch).congruence(tunnels)
        assert report["inter_congruent_fraction"] == 1.0

    def test_bootstrap_tunnel_not_congruent(self, orch):
        members = {1: {"a2"}, 3: {"c1"}}
        tunnels = topo(orch).build(members, {"a2": 1, "c1": 2})
        report = topo(orch).congruence(tunnels)
        # AS1 and AS3 are not BGP neighbors: the long-haul tunnel is
        # incongruent with the physical topology.
        assert report["inter_congruent_fraction"] == 0.0
        assert report["inter_tunnels"] == 1.0

    def test_mean_tunnel_cost_reported(self, orch):
        members = {1: {"a0", "a2"}}
        tunnels = topo(orch).build(members, {"a0": 1, "a2": 2})
        report = topo(orch).congruence(tunnels)
        assert report["mean_tunnel_cost"] > 0

    def test_member_distance_accessor(self, orch):
        t = topo(orch)
        t.build({1: {"a0"}}, {"a0": 1})
        assert t.member_distance("a0", "a3", 1) == 3.0
        assert t.member_distance("a0", "b0", 1) is None
